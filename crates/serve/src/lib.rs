#![deny(missing_docs)]
//! # scl-serve — a multi-tenant plan service
//!
//! Everything below this crate executes **one caller's** plan: eagerly
//! ([`Skel::run`]), fused ([`Scl::run_fused`]), optimised
//! ([`Scl::run_optimized`]), or over a stream
//! ([`StreamExec`]). A serving system faces the
//! opposite shape: **many independent clients** submitting **many
//! different plans** concurrently against **one** shared machine budget.
//! Paying plan compilation (optimise → fuse → build a persistent operator
//! graph, spawning its farm workers) per request would dwarf the work of
//! most requests, and letting every client fan out as if it owned the
//! host would oversubscribe it — the behavioural-skeleton literature
//! frames this as autonomic management of multiple non-functional
//! concerns; here the concerns are compilation cost, host-thread
//! capacity, and per-client accounting, managed *across tenants* rather
//! than within one graph.
//!
//! [`Serve`] is that front-end. Three mechanisms carry it:
//!
//! * **A plan cache.** Submissions are keyed by the plan's structural
//!   fingerprint ([`Skel::fingerprint`], optionally salted per caller via
//!   [`Serve::submit_keyed`]). The first submission of a distinct plan
//!   compiles it — for optimized submissions
//!   ([`Serve::submit_optimized`]) this includes lowering to the IR and
//!   applying the paper's §4 rewrite laws — into a persistent
//!   [`StreamExec`] operator graph; every later
//!   structurally-equal submission reuses the compiled graph, paying only
//!   the hash. Entries are evicted least-recently-used beyond
//!   [`ServePolicy::with_plan_cache_cap`].
//!
//! * **A shard scheduler.** One host-wide
//!   [`ThreadBudget`] is partitioned across the
//!   *active* tenants in weighted fair shares (largest-remainder
//!   apportionment over [`Serve::add_tenant_weighted`] weights),
//!   recomputed every service round as tenants arrive and finish. A
//!   batch's share is claimed as a [`BudgetLease`](scl_exec::BudgetLease)
//!   and handed to the graph through its external width cap
//!   ([`StreamExec::set_width_cap`](scl_stream::StreamExec::set_width_cap)),
//!   so farm replicas beyond the share park on their gates — adaptation
//!   without spawning or joining a single thread.
//!
//! * **Request batching.** Same-plan requests waiting at the start of a
//!   service round are coalesced — up to
//!   [`ServePolicy::with_batch_window`] of them — into one stream push,
//!   so consecutive requests overlap inside the graph's farm stages and
//!   fused segments amortise their dispatch across the batch.
//!
//! What is deliberately **not** shared is accounting: every request runs
//! against its own simulated-machine context and completes with its own
//! [`MachineReport`], bit-for-bit equal to a solo [`Skel::run`] (or, for
//! optimized submissions, [`Scl::run_optimized`]) of the same plan on the
//! same input — the workspace's `tests/serve_vs_solo.rs` differential
//! suite holds this under sequential, threaded, and cost-driven policies.
//!
//! ## Example
//!
//! ```
//! use scl_core::prelude::*;
//! use scl_serve::{Serve, ServePolicy};
//!
//! let policy = ServePolicy::new(Machine::ap1000(4))
//!     .with_exec(ExecPolicy::Threads(2))
//!     .with_batch_window(8);
//! let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(policy);
//!
//! let alice = srv.add_tenant("alice");
//! let bob = srv.add_tenant_weighted("bob", 3); // 3x alice's share
//!
//! // both tenants submit the same (structurally equal) plan: one compile
//! let plan = || Skel::map(|x: &i64| x * 2).then(Skel::rotate(1));
//! let t1 = srv.submit(alice, plan(), ParArray::from_parts(vec![1, 2, 3, 4])).unwrap();
//! let t2 = srv.submit(bob, plan(), ParArray::from_parts(vec![5, 6, 7, 8])).unwrap();
//!
//! srv.run_until_idle();
//! let (out, report) = srv.take(t1).unwrap();
//! assert_eq!(out.to_vec(), vec![4, 6, 8, 2]);
//! assert_eq!(report.procs, 4); // alice's own accounting, untouched by bob
//! assert!(srv.take(t2).is_some());
//! assert_eq!(srv.stats().cache_misses, 1);
//! assert_eq!(srv.stats().cache_hits, 1);
//! ```
//!
//! ## Threading model
//!
//! `Serve` is single-threaded at the front: submissions enqueue, and
//! [`Serve::step`] / [`Serve::run_until_idle`] pump the compiled graphs
//! on the calling thread (exactly like driving a `StreamExec` directly).
//! All parallelism lives *inside* the cached graphs — their persistent
//! farm replicas — bounded collectively by the thread budget. That keeps
//! the stateful pieces (plan closures, per-entry queues) free of locks
//! while the shared budget stays honest.
//!
//! [`Skel::run`]: scl_core::Skel::run
//! [`Skel::fingerprint`]: scl_core::Skel::fingerprint
//! [`Scl::run_fused`]: scl_core::Scl::run_fused
//! [`Scl::run_optimized`]: scl_core::Scl::run_optimized

use scl_core::{panic_message, FusePort, PlanFingerprint, RequestError, Scl, SclError, Skel};
use scl_exec::{ExecPolicy, ThreadBudget};
use scl_machine::{Machine, MachineReport};
use scl_stream::{StreamExec, StreamPolicy};
use scl_transform::{optimize, Registry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

mod scheduler;

pub use scheduler::fair_shares;

/// What one request resolved to: its output and private machine report,
/// or the typed reason it failed. Failure is a value here — a crashing
/// plan fails its own tickets and nothing else.
pub type RequestOutcome<B> = Result<(B, MachineReport), RequestError>;

/// How a [`Serve`] front-end runs: the machine template every request's
/// context is cloned from, the execution policy compiled graphs serve
/// under, and the serving knobs (thread budget, batch window, plan-cache
/// capacity, channel capacity, adaptive width control).
pub struct ServePolicy {
    machine: Machine,
    exec: ExecPolicy,
    threads: Option<usize>,
    batch_window: usize,
    plan_cache_cap: usize,
    capacity: usize,
    adaptive: bool,
    locked_links: bool,
    quarantine_after: u32,
}

impl ServePolicy {
    /// Defaults: [`ExecPolicy::auto`] execution, a thread budget matching
    /// the policy, batch window 16, plan cache capacity 32, capacity-8
    /// channels, adaptive width control on, quarantine after 3
    /// consecutive crashed batches.
    pub fn new(machine: Machine) -> ServePolicy {
        ServePolicy {
            machine,
            exec: ExecPolicy::auto(),
            threads: None,
            batch_window: 16,
            plan_cache_cap: 32,
            capacity: 8,
            adaptive: true,
            locked_links: false,
            quarantine_after: 3,
        }
    }

    /// Set the execution policy compiled graphs serve under (farm width
    /// ceilings, cost-model consultation) — see
    /// [`StreamPolicy::with_exec`](scl_stream::StreamPolicy::with_exec).
    pub fn with_exec(mut self, exec: ExecPolicy) -> ServePolicy {
        self.exec = exec;
        self
    }

    /// Set the host-wide thread budget shared by **all** tenants (≥ 1).
    /// Defaults to the execution policy's thread count. The shard
    /// scheduler splits this budget into weighted fair shares each round.
    pub fn with_threads(mut self, threads: usize) -> ServePolicy {
        self.threads = Some(threads.max(1));
        self
    }

    /// Set the batch window (≥ 1): how many same-plan requests a service
    /// round coalesces into one stream push. Larger windows amortise
    /// dispatch across more requests at the price of per-round latency.
    pub fn with_batch_window(mut self, window: usize) -> ServePolicy {
        self.batch_window = window.max(1);
        self
    }

    /// Set the plan-cache capacity: compiled graphs kept resident.
    /// Beyond it, the least-recently-used idle entry is evicted (its farm
    /// workers join). `0` disables retention **across service rounds** —
    /// the benchmark's "cold" baseline: every round recompiles, though
    /// same-plan submissions queued within one round still share that
    /// round's compile (they are one batch; eviction happens at the end
    /// of [`Serve::step`], never under a waiting queue).
    pub fn with_plan_cache_cap(mut self, cap: usize) -> ServePolicy {
        self.plan_cache_cap = cap;
        self
    }

    /// Set the per-graph channel capacity (backpressure bound) — see
    /// [`StreamPolicy::with_capacity`](scl_stream::StreamPolicy::with_capacity).
    pub fn with_capacity(mut self, capacity: usize) -> ServePolicy {
        self.capacity = capacity.max(1);
        self
    }

    /// Enable/disable each graph's autonomic width controller (see
    /// [`StreamPolicy::with_adaptive`](scl_stream::StreamPolicy::with_adaptive)).
    /// Either way the shard scheduler's per-round cap bounds the width.
    pub fn with_adaptive(mut self, adaptive: bool) -> ServePolicy {
        self.adaptive = adaptive;
        self
    }

    /// Force every cached graph's stage-to-stage links onto the locked
    /// [`Bounded`](scl_exec::Bounded) channel instead of the lock-free
    /// ring matrices — see
    /// [`StreamPolicy::with_locked_links`](scl_stream::StreamPolicy::with_locked_links).
    /// Exists for differential testing of the two queue families at the
    /// service layer; answers and reports are identical either way.
    pub fn with_locked_links(mut self, locked_links: bool) -> ServePolicy {
        self.locked_links = locked_links;
        self
    }

    /// Set how many **consecutive** crashed batches (≥ 1) a cached plan
    /// survives before it is quarantined: further submissions of the
    /// plan resolve immediately to [`RequestError::Quarantined`] without
    /// compiling or running anything. A fully successful batch resets the
    /// count; evicting the entry (LRU or the memory actuator) pardons the
    /// plan — the next submission recompiles from scratch.
    pub fn with_quarantine_after(mut self, crashes: u32) -> ServePolicy {
        self.quarantine_after = crashes.max(1);
        self
    }

    /// The effective thread budget: the explicit setting, else the
    /// execution policy's thread count.
    fn budget_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| self.exec.effective_threads(usize::MAX))
    }

    fn stream_policy(&self, fused_charging: bool) -> StreamPolicy {
        StreamPolicy::new(self.machine.clone())
            .with_exec(self.exec)
            .with_capacity(self.capacity)
            .with_adaptive(self.adaptive)
            .with_fused_charging(fused_charging)
            .with_locked_links(self.locked_links)
    }
}

/// A registered client of the service; see [`Serve::add_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub(crate) usize);

/// A pending request's claim check; redeem with [`Serve::take`] after
/// service rounds have run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// Serving counters, from [`Serve::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests accepted (including uncacheable ones).
    pub requests: u64,
    /// Requests completed and delivered to the done-pile.
    pub completed: u64,
    /// Submissions that reused a cached compiled graph.
    pub cache_hits: u64,
    /// Submissions that compiled a new graph.
    pub cache_misses: u64,
    /// Compiled graphs evicted (least-recently-used beyond the cap).
    pub evictions: u64,
    /// Service-round batches pushed through graphs.
    pub batches: u64,
    /// Uncacheable submissions served immediately through the eager /
    /// fallback path (unfusable plans, non-lowerable optimized plans).
    pub eager_runs: u64,
    /// Requests resolved with a typed [`RequestError`] (any kind): their
    /// tickets are ready with an `Err` outcome, collectable through
    /// [`Serve::outcome`]. Supersets [`ServeStats::panics`] and
    /// [`ServeStats::deadline_expired`].
    pub failed: u64,
    /// Requests failed because their plan crashed (stage/barrier panics,
    /// barrier errors, eager panics) — including requests queued behind a
    /// crashed batch for the same plan.
    pub panics: u64,
    /// Requests failed because their deadline passed before completion.
    pub deadline_expired: u64,
    /// Graphs rebuilt from a resubmitted plan after a crash tore the
    /// previous graph down.
    pub rebuilds: u64,
    /// Cached plans quarantined after reaching the consecutive-crash
    /// limit ([`ServePolicy::with_quarantine_after`]).
    pub quarantines: u64,
}

struct Tenant {
    name: String,
    weight: u32,
    /// Requests accepted but not yet completed.
    pending: usize,
    served: u64,
    /// Requests resolved with a typed error — the crash/expiry sensor an
    /// autonomic manager reads per tenant.
    failed: u64,
}

/// One pending request: its claim check, owner, input, and optional
/// absolute deadline.
struct Request<A> {
    ticket: Ticket,
    tenant: TenantId,
    input: A,
    deadline: Option<Instant>,
}

/// A cached plan: the persistent graph (`None` after a crash tore it
/// down, until the next submission rebuilds it), its waiting queue, and
/// its supervision state.
struct Entry<A: FusePort, B: FusePort> {
    exec: Option<StreamExec<A, B>>,
    queue: VecDeque<Request<A>>,
    /// Submission-counter stamp of the last use, for LRU eviction.
    last_used: u64,
    /// Consecutive crashed batches; reset by a fully successful batch.
    crashes: u32,
    /// Once true, submissions of this plan fail fast as
    /// [`RequestError::Quarantined`] until the entry is evicted.
    quarantined: bool,
}

/// The multi-tenant plan service; see the [crate docs](self).
///
/// Typed over one request signature `A → B` (the shapes
/// [`FusePort`] admits: `ParArray<T>`, conforming pairs, host `Vec<T>`,
/// iteration states); tenants may still serve arbitrarily many *different
/// plans* of that signature, each cached under its own fingerprint.
pub struct Serve<A: FusePort + Send + 'static, B: FusePort + 'static> {
    policy: ServePolicy,
    budget: Arc<ThreadBudget>,
    tenants: Vec<Tenant>,
    /// The plan cache. A `BTreeMap` so service rounds visit entries in a
    /// deterministic (fingerprint) order.
    cache: BTreeMap<PlanFingerprint, Entry<A, B>>,
    done: HashMap<Ticket, RequestOutcome<B>>,
    next_ticket: u64,
    /// Monotone submission counter, stamping cache entries for LRU.
    clock: u64,
    /// Manager-imposed ceiling on every batch's farm width (`usize::MAX`
    /// when unset); see [`Serve::set_width_cap`].
    width_cap: usize,
    stats: ServeStats,
}

impl<A, B> Serve<A, B>
where
    A: FusePort + Send + 'static,
    B: FusePort + 'static,
{
    /// A service with no tenants and an empty cache.
    pub fn new(policy: ServePolicy) -> Serve<A, B> {
        let budget = ThreadBudget::new(policy.budget_threads());
        Serve {
            policy,
            budget,
            tenants: Vec::new(),
            cache: BTreeMap::new(),
            done: HashMap::new(),
            next_ticket: 0,
            clock: 0,
            width_cap: usize::MAX,
            stats: ServeStats::default(),
        }
    }

    /// Register a tenant with weight 1.
    pub fn add_tenant(&mut self, name: &str) -> TenantId {
        self.add_tenant_weighted(name, 1)
    }

    /// Register a tenant with an explicit fair-share weight (≥ 1): a
    /// weight-3 tenant receives three times the thread share of a
    /// weight-1 tenant whenever both are active.
    pub fn add_tenant_weighted(&mut self, name: &str, weight: u32) -> TenantId {
        let id = TenantId(self.tenants.len());
        self.tenants.push(Tenant {
            name: name.to_string(),
            weight: weight.max(1),
            pending: 0,
            served: 0,
            failed: 0,
        });
        id
    }

    /// A registered tenant's name.
    pub fn tenant_name(&self, t: TenantId) -> &str {
        &self.tenants[t.0].name
    }

    /// Requests accepted for `t` but not yet completed.
    pub fn tenant_pending(&self, t: TenantId) -> usize {
        self.tenants[t.0].pending
    }

    /// Requests completed for `t` over the service's lifetime.
    pub fn tenant_served(&self, t: TenantId) -> u64 {
        self.tenants[t.0].served
    }

    /// Requests resolved with a typed error for `t` over the service's
    /// lifetime — plan crashes, deadline expiries, quarantine rejections.
    /// The per-tenant crash sensor an autonomic manager de-weights on.
    pub fn tenant_failed(&self, t: TenantId) -> u64 {
        self.tenants[t.0].failed
    }

    /// The serving counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Compiled graphs currently resident in the plan cache (live graphs
    /// only: entries torn down by a crash hold no graph until rebuilt).
    pub fn cached_plans(&self) -> usize {
        self.cache.values().filter(|e| e.exec.is_some()).count()
    }

    /// Cached plans currently quarantined (rejecting submissions until
    /// evicted).
    pub fn quarantined_plans(&self) -> usize {
        self.cache.values().filter(|e| e.quarantined).count()
    }

    /// Requests waiting in plan queues (excludes completed ones).
    pub fn pending_requests(&self) -> usize {
        self.cache.values().map(|e| e.queue.len()).sum()
    }

    /// The host-wide thread budget the shard scheduler partitions.
    pub fn thread_budget(&self) -> &Arc<ThreadBudget> {
        &self.budget
    }

    // ---- autonomic-manager hooks -------------------------------------------
    //
    // The knobs an external controller (the `scl-net` MAPE manager, or any
    // operator loop) turns at runtime. Every one of them changes *how* the
    // service runs, never *what* it answers: the differential suites pin
    // results and per-request reports as invariant under batch window,
    // weight, width-cap, and cache-cap changes.

    /// The current batch window (same-plan requests coalesced per round).
    pub fn batch_window(&self) -> usize {
        self.policy.batch_window
    }

    /// Retune the batch window (≥ 1) at runtime. Narrower windows trade
    /// dispatch amortisation for per-round latency — the knob a latency
    /// manager shrinks when a tenant's p99 drifts over its SLO, and
    /// re-widens once the SLO holds again.
    pub fn set_batch_window(&mut self, window: usize) {
        self.policy.batch_window = window.max(1);
    }

    /// A tenant's current fair-share weight.
    pub fn tenant_weight(&self, t: TenantId) -> u32 {
        self.tenants[t.0].weight
    }

    /// Reweight a tenant (≥ 1) at runtime. Takes effect from the next
    /// service round's share computation — the actuator a manager uses to
    /// arbitrate thread capacity between tenants' throughput contracts.
    pub fn set_tenant_weight(&mut self, t: TenantId, weight: u32) {
        self.tenants[t.0].weight = weight.max(1);
    }

    /// The manager-imposed width ceiling (`usize::MAX` when unset).
    pub fn width_cap(&self) -> usize {
        self.width_cap
    }

    /// Cap every batch's farm width at `cap` active replicas (≥ 1),
    /// composing with the per-round budget grant (the effective width is
    /// the minimum of the two). A claim never asks the budget for more
    /// than the cap, so the withheld threads stay claimable by other
    /// consumers of the shared budget. `usize::MAX` removes the cap.
    pub fn set_width_cap(&mut self, cap: usize) {
        self.width_cap = cap.max(1);
    }

    /// The plan-cache capacity currently in force.
    pub fn plan_cache_cap(&self) -> usize {
        self.policy.plan_cache_cap
    }

    /// Retarget the plan-cache capacity at runtime and evict down to it
    /// immediately (LRU-idle first; entries with waiting requests are
    /// never evicted, so the effective size may temporarily exceed a
    /// shrunken cap until their queues drain). Evictions count in
    /// [`ServeStats::evictions`] — the memory-pressure actuator.
    pub fn set_plan_cache_cap(&mut self, cap: usize) {
        self.policy.plan_cache_cap = cap;
        self.evict_to_cap();
    }

    /// Evict up to `n` least-recently-used **idle** compiled graphs right
    /// now, regardless of the cap — the one-shot memory-pressure actuator
    /// (the cap stays as configured). Returns how many were evicted;
    /// each counts in [`ServeStats::evictions`].
    pub fn evict_idle(&mut self, n: usize) -> usize {
        let mut evicted = 0;
        while evicted < n {
            let victim = self
                .cache
                .iter()
                .filter(|(_, e)| e.queue.is_empty())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.cache.remove(&fp);
                    self.stats.evictions += 1;
                    evicted += 1;
                }
                None => break,
            }
        }
        evicted
    }

    /// The current weighted fair shares over **active** tenants (those
    /// with pending requests): what the next service round will hand each
    /// tenant's batches. Empty when nothing is pending.
    pub fn shares(&self) -> Vec<(TenantId, usize)> {
        let active: Vec<(TenantId, u32)> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.pending > 0)
            .map(|(i, t)| (TenantId(i), t.weight))
            .collect();
        fair_shares(self.budget.total(), &active)
    }

    /// Submit a request: run `plan` over `input` on behalf of `tenant`.
    /// Structurally equal plans (see
    /// [`PlanFingerprint`] for the contract)
    /// share one compiled graph; semantically different plans with the
    /// same structure must go through [`Serve::submit_keyed`] instead.
    ///
    /// Fails fast with [`SclError::MachineTooSmall`] when the input spans
    /// more parts than the machine template has processors — the same
    /// entry contract as the streaming layer.
    pub fn submit(
        &mut self,
        tenant: TenantId,
        plan: Skel<'static, A, B>,
        input: A,
    ) -> Result<Ticket, SclError> {
        self.submit_keyed(tenant, "", plan, input)
    }

    /// [`Serve::submit`] with a caller-chosen cache `key` folded into the
    /// fingerprint ([`PlanFingerprint::with_salt`]) — how clients keep
    /// structurally identical but semantically different plans apart
    /// (e.g. a plan name plus its parameters, the prepared-statement
    /// idiom).
    ///
    /// [`PlanFingerprint::with_salt`]: scl_core::PlanFingerprint::with_salt
    pub fn submit_keyed(
        &mut self,
        tenant: TenantId,
        key: &str,
        plan: Skel<'static, A, B>,
        input: A,
    ) -> Result<Ticket, SclError> {
        self.submit_keyed_deadline(tenant, key, plan, input, None)
    }

    /// [`Serve::submit_keyed`] with an absolute deadline attached to the
    /// request. Once the deadline passes, the request short-circuits to
    /// [`RequestError::DeadlineExceeded`] wherever it happens to be —
    /// still queued, mid-batch, or between farm stages — instead of
    /// occupying replicas. `None` means no deadline.
    pub fn submit_keyed_deadline(
        &mut self,
        tenant: TenantId,
        key: &str,
        plan: Skel<'static, A, B>,
        input: A,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SclError> {
        let input = self.check_input(input)?;
        match plan.fingerprint() {
            None => {
                // unfusable: nothing to compile, nothing to cache — serve
                // immediately through the eager layer, exactly as the
                // streaming runtime's eager fallback would
                Ok(self.eager_run(tenant, input, deadline, |scl, input| plan.run(scl, input)))
            }
            Some(fp) => {
                let fp = salt_key(fp, "plain", key);
                let ticket = self.mint_ticket(tenant);
                self.enqueue(fp, ticket, tenant, input, deadline, || {
                    (plan, /* fused_charging = */ false)
                });
                Ok(ticket)
            }
        }
    }

    /// One service round, in two phases so different plans' farm work
    /// genuinely overlaps:
    ///
    /// 1. **Push.** For every cached plan with waiting requests: coalesce
    ///    up to the batch window of them, claim the batch's thread share
    ///    from the budget as a [`BudgetLease`](scl_exec::BudgetLease)
    ///    (the share: the sum of the batch's distinct tenants' fair
    ///    shares), cap the graph's width at the grant, and push the whole
    ///    batch. From here each graph's farm replicas process their items
    ///    on worker threads concurrently with every other graph's — the
    ///    per-graph caps are what keep the *sum* of active replicas
    ///    within the budget while they overlap.
    /// 2. **Drain.** Collect each graph's outputs in turn, pairing every
    ///    request with its own private [`MachineReport`], and release the
    ///    leases.
    ///
    /// Budget honesty is best-effort at the edge: the budget is shared
    /// (see [`Serve::thread_budget`]), and when another consumer holds
    /// all capacity `try_claim` grants nothing — the batch then still
    /// runs at width 1 rather than stalling the round (admission over
    /// strict capacity, the same trade the scheduler's one-thread floor
    /// makes). Returns how many requests completed.
    ///
    /// This method **never unwinds on a plan failure**: a crashing plan
    /// resolves its own tickets to `Err` outcomes (collect them with
    /// [`Serve::outcome`]), the round stays consistent, and the other
    /// plans' results deliver normally. The crashed plan's graph is torn
    /// down — requests still queued behind the batch fail with the same
    /// error — and the next submission of the plan rebuilds it from
    /// scratch, until [`ServePolicy::with_quarantine_after`] consecutive
    /// crashes quarantine it. Requests whose deadline passed while queued
    /// are shed here first, before any batch is formed.
    pub fn step(&mut self) -> usize {
        self.expire_queued();
        let shares: HashMap<TenantId, usize> = self.shares().into_iter().collect();
        let window = self.policy.batch_window;
        let fps: Vec<PlanFingerprint> = self
            .cache
            .iter()
            .filter(|(_, e)| !e.queue.is_empty())
            .map(|(fp, _)| *fp)
            .collect();

        // phase 1: claim shares and push every plan's batch
        struct InFlight {
            fp: PlanFingerprint,
            tickets: Vec<(Ticket, TenantId)>,
            lease: Option<scl_exec::BudgetLease>,
        }
        let mut in_flight: Vec<InFlight> = Vec::with_capacity(fps.len());
        for fp in fps {
            let entry = self.cache.get_mut(&fp).expect("listed above");
            let batch: Vec<Request<A>> =
                entry.queue.drain(..window.min(entry.queue.len())).collect();
            // the batch's share: the sum of its distinct tenants' shares,
            // clamped to the whole budget
            let mut want = 0usize;
            let mut seen: Vec<TenantId> = Vec::new();
            for r in &batch {
                if !seen.contains(&r.tenant) {
                    seen.push(r.tenant);
                    want += shares.get(&r.tenant).copied().unwrap_or(1);
                }
            }
            let want = want.clamp(1, self.budget.total()).min(self.width_cap);
            let lease = self.budget.try_claim(want, 1);
            let granted = lease.as_ref().map_or(1, |l| l.granted());
            let exec = entry
                .exec
                .as_mut()
                .expect("a queued entry always has a live graph");
            exec.set_width_cap(granted.min(self.width_cap));

            let tickets: Vec<(Ticket, TenantId)> =
                batch.iter().map(|r| (r.ticket, r.tenant)).collect();
            // push never unwinds on a plan failure: a crashing stage (or
            // an inline graph executing inside push) poisons the item's
            // envelope, resolved at drain as a typed error
            for r in batch {
                exec.push_deadline(r.input, r.deadline)
                    .expect("submit validated the input against this machine");
            }
            in_flight.push(InFlight { fp, tickets, lease });
        }

        // phase 2: drain each graph (their farm replicas have been
        // working concurrently since the pushes) and deliver outcomes —
        // healthy results and typed failures alike, one per ticket
        let mut completed = 0usize;
        for InFlight { fp, tickets, lease } in in_flight {
            let outcomes = {
                let entry = self.cache.get_mut(&fp).expect("still resident");
                entry
                    .exec
                    .as_mut()
                    .expect("graph stays live until this drain settles")
                    .drain_outcomes()
            };
            drop(lease);
            assert_eq!(
                outcomes.len(),
                tickets.len(),
                "service invariant: one outcome per pushed request"
            );
            // the first fault (not deadline expiry) in the batch decides
            // the plan's supervision: tear down and count a crash
            let mut fault: Option<RequestError> = None;
            for ((ticket, tenant), outcome) in tickets.into_iter().zip(outcomes) {
                match outcome {
                    Ok((out, report)) => {
                        self.finish(ticket, tenant, out, report);
                        completed += 1;
                    }
                    Err(err) => {
                        if fault.is_none() && err.is_fault() {
                            fault = Some(err.clone());
                        }
                        self.fail(ticket, tenant, err);
                    }
                }
            }
            self.stats.batches += 1;
            match fault {
                Some(err) => self.crash_entry(fp, err),
                None => {
                    if let Some(entry) = self.cache.get_mut(&fp) {
                        entry.crashes = 0;
                    }
                }
            }
        }
        self.evict_to_cap();
        completed
    }

    /// Shed queued requests whose deadline already passed — before any
    /// batch forms, so dead work never claims budget or a batch slot.
    fn expire_queued(&mut self) {
        let mut expired: Vec<(Ticket, TenantId)> = Vec::new();
        let mut now = None;
        for entry in self.cache.values_mut() {
            if entry.queue.iter().all(|r| r.deadline.is_none()) {
                continue; // the common (deadline-free) case: no clock read
            }
            let now = *now.get_or_insert_with(Instant::now);
            let mut kept = VecDeque::with_capacity(entry.queue.len());
            for r in entry.queue.drain(..) {
                if r.deadline.is_some_and(|d| now >= d) {
                    expired.push((r.ticket, r.tenant));
                } else {
                    kept.push_back(r);
                }
            }
            entry.queue = kept;
        }
        for (ticket, tenant) in expired {
            self.fail(ticket, tenant, RequestError::DeadlineExceeded);
        }
    }

    /// Supervise a crashed plan: tear the graph down (its farm workers
    /// join; the next submission rebuilds from the plan), fail every
    /// request still queued behind the crashed batch with the same typed
    /// error, bump the consecutive-crash count, and quarantine the plan
    /// once it reaches the limit.
    fn crash_entry(&mut self, fp: PlanFingerprint, err: RequestError) {
        let Some(entry) = self.cache.get_mut(&fp) else {
            return;
        };
        entry.exec = None; // teardown: StreamExec drop joins its workers
        entry.crashes += 1;
        if !entry.quarantined && entry.crashes >= self.policy.quarantine_after {
            entry.quarantined = true;
            self.stats.quarantines += 1;
        }
        let queued: Vec<(Ticket, TenantId)> = entry
            .queue
            .drain(..)
            .map(|r| (r.ticket, r.tenant))
            .collect();
        for (ticket, tenant) in queued {
            self.fail(ticket, tenant, err.clone());
        }
    }

    /// Run service rounds until no request is waiting. (Completed results
    /// stay in the done-pile until [`Serve::take`]n.)
    pub fn run_until_idle(&mut self) {
        while self.pending_requests() > 0 {
            self.step();
        }
    }

    /// Redeem a ticket: the request's output and its own machine report.
    /// `None` until the request's service round has run (drive with
    /// [`Serve::step`] / [`Serve::run_until_idle`]).
    ///
    /// # Panics
    ///
    /// Re-raises the request's failure if it resolved to a typed error —
    /// the untyped convenience for callers that only submit healthy
    /// plans. Collect with [`Serve::outcome`] to receive failures as
    /// values instead.
    pub fn take(&mut self, ticket: Ticket) -> Option<(B, MachineReport)> {
        match self.outcome(ticket)? {
            Ok(out) => Some(out),
            Err(e) => panic!("request failed: {e}"),
        }
    }

    /// Redeem a ticket as a value: the request's output and report, or
    /// the typed [`RequestError`] it failed with. `None` until the
    /// request's service round has run. This is the collection API a
    /// service front door uses — failure never unwinds through it.
    pub fn outcome(&mut self, ticket: Ticket) -> Option<RequestOutcome<B>> {
        self.done.remove(&ticket)
    }

    /// Whether a ticket is resolved — to a result or a typed failure —
    /// and ready to collect with [`Serve::outcome`] / [`Serve::take`].
    pub fn is_ready(&self, ticket: Ticket) -> bool {
        self.done.contains_key(&ticket)
    }

    // ---- internals ---------------------------------------------------------

    /// Validate an input against the machine template — a borrowed parts
    /// count ([`FusePort::parts_len`]), no erasure on the admission path.
    fn check_input(&self, input: A) -> Result<A, SclError> {
        if input.parts_len() > self.policy.machine.nprocs() {
            return Err(SclError::MachineTooSmall {
                needed: input.parts_len(),
                procs: self.policy.machine.nprocs(),
            });
        }
        Ok(input)
    }

    /// Serve one request immediately through the eager layer — the
    /// fallback for plans with nothing to compile (unfusable, or
    /// non-lowerable in optimized mode). The run claims its width from
    /// the shared budget ([`Serve::eager_budgeted`]) and resolves the
    /// ticket before returning. A panicking plan resolves its ticket to
    /// a typed `Err` outcome instead of unwinding — the same
    /// failure-as-a-value contract as [`Serve::step`] — and an
    /// already-expired deadline short-circuits without running at all.
    fn eager_run(
        &mut self,
        tenant: TenantId,
        input: A,
        deadline: Option<Instant>,
        run: impl FnOnce(&mut Scl, A) -> B,
    ) -> Ticket {
        let ticket = self.mint_ticket(tenant);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            self.fail(ticket, tenant, RequestError::DeadlineExceeded);
            return ticket;
        }
        let (exec, lease) = self.eager_budgeted();
        let mut scl = Scl::new(self.policy.machine.clone()).with_policy(exec);
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&mut scl, input)));
        drop(lease);
        match result {
            Ok(out) => {
                self.finish(ticket, tenant, out, scl.machine.report());
                self.stats.eager_runs += 1;
            }
            Err(payload) => {
                let err = RequestError::Panicked {
                    message: panic_message(&*payload).to_string(),
                };
                self.fail(ticket, tenant, err);
            }
        }
        ticket
    }

    /// The execution policy (and its budget lease) for an immediate eager
    /// run: claim up to the policy's thread count from the shared budget
    /// and run at the grant, so fallback requests stay inside the same
    /// host-wide cap the compiled graphs honour. With nothing claimable
    /// the run degrades to one thread — results and reports are
    /// policy-independent (the differential suites pin this), only host
    /// wall time changes.
    fn eager_budgeted(&self) -> (ExecPolicy, Option<scl_exec::BudgetLease>) {
        let want = self.policy.exec.effective_threads(usize::MAX);
        if want <= 1 {
            return (self.policy.exec, None);
        }
        let lease = self.budget.try_claim(want, 1);
        let granted = lease.as_ref().map_or(1, |l| l.granted());
        let exec = match self.policy.exec {
            ExecPolicy::Sequential => ExecPolicy::Sequential,
            ExecPolicy::Threads(_) => ExecPolicy::Threads(granted),
            ExecPolicy::CostDriven { .. } => ExecPolicy::CostDriven { threads: granted },
        };
        (exec, lease)
    }

    fn mint_ticket(&mut self, tenant: TenantId) -> Ticket {
        assert!(tenant.0 < self.tenants.len(), "unregistered tenant");
        let t = Ticket(self.next_ticket);
        self.next_ticket += 1;
        self.stats.requests += 1;
        self.tenants[tenant.0].pending += 1;
        t
    }

    fn finish(&mut self, ticket: Ticket, tenant: TenantId, out: B, report: MachineReport) {
        self.done.insert(ticket, Ok((out, report)));
        self.stats.completed += 1;
        let t = &mut self.tenants[tenant.0];
        t.pending -= 1;
        t.served += 1;
    }

    /// Resolve a ticket to a typed failure: the outcome lands in the
    /// done-pile (ready, collectable via [`Serve::outcome`]) and the
    /// accounting settles — per-kind counters included.
    fn fail(&mut self, ticket: Ticket, tenant: TenantId, err: RequestError) {
        match &err {
            RequestError::DeadlineExceeded => self.stats.deadline_expired += 1,
            e if e.is_fault() => self.stats.panics += 1,
            _ => {}
        }
        self.stats.failed += 1;
        let t = &mut self.tenants[tenant.0];
        t.pending -= 1;
        t.failed += 1;
        self.done.insert(ticket, Err(err));
    }

    /// Queue a request under `fp`, compiling the graph on a cache miss —
    /// or recompiling it when a crash tore the cached graph down
    /// (`build` yields the plan and its charging mode only then). A
    /// quarantined plan fails the request immediately instead.
    fn enqueue(
        &mut self,
        fp: PlanFingerprint,
        ticket: Ticket,
        tenant: TenantId,
        input: A,
        deadline: Option<Instant>,
        build: impl FnOnce() -> (Skel<'static, A, B>, bool),
    ) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(entry) = self.cache.get_mut(&fp) {
            entry.last_used = clock;
            if entry.quarantined {
                let crashes = entry.crashes;
                self.fail(ticket, tenant, RequestError::Quarantined { crashes });
                return;
            }
            self.stats.cache_hits += 1;
            if entry.exec.is_none() {
                // supervision's recovery half: the previous graph crashed
                // and was torn down; rebuild it from this submission's
                // (structurally equal) plan
                let (plan, fused_charging) = build();
                entry.exec = Some(StreamExec::new(
                    plan,
                    self.policy.stream_policy(fused_charging),
                ));
                self.stats.rebuilds += 1;
            }
            entry.queue.push_back(Request {
                ticket,
                tenant,
                input,
                deadline,
            });
            return;
        }
        self.stats.cache_misses += 1;
        let (plan, fused_charging) = build();
        let mut queue = VecDeque::new();
        queue.push_back(Request {
            ticket,
            tenant,
            input,
            deadline,
        });
        self.cache.insert(
            fp,
            Entry {
                exec: Some(StreamExec::new(
                    plan,
                    self.policy.stream_policy(fused_charging),
                )),
                queue,
                last_used: clock,
                crashes: 0,
                quarantined: false,
            },
        );
    }

    /// Drop least-recently-used idle entries until the cache fits its
    /// cap. Entries with waiting requests are never evicted.
    fn evict_to_cap(&mut self) {
        while self.cache.len() > self.policy.plan_cache_cap {
            let victim = self
                .cache
                .iter()
                .filter(|(_, e)| e.queue.is_empty())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.cache.remove(&fp); // StreamExec drop joins its workers
                    self.stats.evictions += 1;
                }
                None => break, // everything resident is still in use
            }
        }
    }
}

/// Optimized submissions for the symbolic `i64` fragment.
impl Serve<scl_core::ParArray<i64>, scl_core::ParArray<i64>> {
    /// Submit a request served **optimize-then-execute**, the cached twin
    /// of [`Scl::run_optimized`]: on the first submission of a distinct
    /// plan the service lowers it, applies the §4 rewrite laws
    /// ([`optimize`]), raises the optimised program
    /// ([`Skel::from_expr`]) and compiles *that* into the cached graph
    /// (with fused-style charging, so reports match solo
    /// `run_optimized`); later structurally-equal submissions skip
    /// straight past lower/optimise/raise/compile to the cached graph.
    ///
    /// Plans outside the lowerable fragment take `run_optimized`'s own
    /// fallback — an immediate eager run — and are not cached. The
    /// borrowed `plan` is only read; `reg` must outlive the service's
    /// worker threads, hence `'static` (lowerable-fragment registries are
    /// cheap to build once and leak, see the serving example).
    ///
    /// [`Scl::run_optimized`]: scl_core::Scl::run_optimized
    /// [`Skel::from_expr`]: scl_core::Skel::from_expr
    pub fn submit_optimized(
        &mut self,
        tenant: TenantId,
        key: &str,
        plan: &Skel<'_, scl_core::ParArray<i64>, scl_core::ParArray<i64>>,
        reg: &'static Registry,
        input: scl_core::ParArray<i64>,
    ) -> Result<Ticket, SclError> {
        self.submit_optimized_deadline(tenant, key, plan, reg, input, None)
    }

    /// [`Serve::submit_optimized`] with an absolute deadline attached —
    /// the same propagation contract as
    /// [`Serve::submit_keyed_deadline`].
    pub fn submit_optimized_deadline(
        &mut self,
        tenant: TenantId,
        key: &str,
        plan: &Skel<'_, scl_core::ParArray<i64>, scl_core::ParArray<i64>>,
        reg: &'static Registry,
        input: scl_core::ParArray<i64>,
        deadline: Option<Instant>,
    ) -> Result<Ticket, SclError> {
        let input = self.check_input(input)?;
        let eager_fallback = |srv: &mut Self, input| {
            // outside the fusable/lowerable fragment: `run_optimized`
            // falls back to an eager run, and so does the service
            srv.eager_run(tenant, input, deadline, |scl, input| plan.run(scl, input))
        };
        let Some(fp) = plan.fingerprint() else {
            return Ok(eager_fallback(self, input));
        };
        let fp = salt_key(fp, "optimized", key);
        // a cache hit pays only the fingerprint: lowering (an O(plan) IR
        // clone plus symbol validation) is deferred to the miss path —
        // the hit's structurally-equal predecessor already lowered. An
        // entry whose graph a crash tore down is *not* a ready hit: it
        // needs this submission's plan to rebuild, so it takes the
        // lowering path below (quarantined entries never build at all).
        let hit_ready = self
            .cache
            .get(&fp)
            .is_some_and(|e| e.exec.is_some() || e.quarantined);
        if hit_ready {
            let ticket = self.mint_ticket(tenant);
            self.enqueue(fp, ticket, tenant, input, deadline, || {
                unreachable!("live or quarantined entry checked above; enqueue never builds here")
            });
            return Ok(ticket);
        }
        match plan.lower(reg) {
            Some(expr) => {
                let ticket = self.mint_ticket(tenant);
                self.enqueue(fp, ticket, tenant, input, deadline, move || {
                    let (opt, _log) = optimize(expr, reg);
                    let raised = Skel::from_expr(&opt, reg)
                        .expect("optimize preserves the array→array shape");
                    (raised, /* fused_charging = */ true)
                });
                Ok(ticket)
            }
            None => Ok(eager_fallback(self, input)),
        }
    }
}

/// Salt a fingerprint with the submission mode and the caller's cache
/// key, so plain and optimized graphs of one plan never collide and
/// caller keys stay namespaced.
fn salt_key(fp: PlanFingerprint, mode: &str, key: &str) -> PlanFingerprint {
    let fp = fp.with_salt(mode);
    if key.is_empty() {
        fp
    } else {
        fp.with_salt(key)
    }
}

#[cfg(test)]
mod tests;
