//! The shard scheduler's apportionment rule: split one host-wide thread
//! budget into weighted fair shares over the currently active tenants.
//!
//! The rule is largest-remainder (Hamilton) apportionment with a
//! one-thread floor:
//!
//! 1. every active tenant's ideal share is `budget · wᵢ / Σw`;
//! 2. each receives the floor of its ideal share, raised to at least 1
//!    (admission beats strict proportionality: a tenant with a pending
//!    request is never starved outright);
//! 3. leftover threads go to the largest fractional remainders, ties
//!    broken by tenant id for determinism.
//!
//! Because of the one-thread floor the shares may *sum above* the budget
//! whenever any tenant's proportional share rounds to zero — active
//! tenants outnumbering threads, or heavily skewed weights (budget 4 over
//! weights 100:1 yields shares 4 and 1); the budget itself
//! ([`scl_exec::ThreadBudget`]) stays honest at claim time — a batch
//! whose share exceeds what is left is granted less, and farm gates cap
//! at the grant.

use crate::TenantId;

/// Split `budget` threads across `weights` (active tenants and their
/// weights) by largest-remainder apportionment with a one-thread floor
/// (see this module's docs above). Returns one `(tenant, share)` per input
/// tenant, in input order. Empty input yields an empty split.
pub fn fair_shares(budget: usize, weights: &[(TenantId, u32)]) -> Vec<(TenantId, usize)> {
    if weights.is_empty() {
        return Vec::new();
    }
    let budget = budget.max(1);
    let total_w: u64 = weights.iter().map(|(_, w)| u64::from((*w).max(1))).sum();
    // base shares and fractional remainders (scaled by total_w)
    let mut out: Vec<(TenantId, usize)> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u64, TenantId, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (idx, (t, w)) in weights.iter().enumerate() {
        let ideal_num = budget as u64 * u64::from((*w).max(1));
        let base = (ideal_num / total_w) as usize;
        let rem = ideal_num % total_w;
        assigned += base;
        out.push((*t, base));
        remainders.push((rem, *t, idx));
    }
    // distribute the leftover to the largest remainders, ties by id
    let mut leftover = budget.saturating_sub(assigned);
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, _, idx) in remainders {
        if leftover == 0 {
            break;
        }
        out[idx].1 += 1;
        leftover -= 1;
    }
    // the admission floor, applied last so it never eats the leftover
    for share in &mut out {
        share.1 = share.1.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TenantId {
        TenantId(i)
    }

    fn shares(budget: usize, ws: &[u32]) -> Vec<usize> {
        let weights: Vec<(TenantId, u32)> =
            ws.iter().enumerate().map(|(i, &w)| (t(i), w)).collect();
        fair_shares(budget, &weights)
            .into_iter()
            .map(|(_, s)| s)
            .collect()
    }

    #[test]
    fn equal_weights_split_evenly() {
        assert_eq!(shares(8, &[1, 1]), vec![4, 4]);
        assert_eq!(shares(8, &[1, 1, 1, 1]), vec![2, 2, 2, 2]);
        assert_eq!(shares(1, &[1]), vec![1]);
    }

    #[test]
    fn weights_scale_shares() {
        assert_eq!(shares(8, &[3, 1]), vec![6, 2]);
        assert_eq!(shares(4, &[1, 3]), vec![1, 3]);
    }

    #[test]
    fn leftovers_go_to_largest_remainders_deterministically() {
        // 7 across three equal tenants: 2+2+2 base, one leftover → equal
        // remainders, tie broken toward the lowest id
        assert_eq!(shares(7, &[1, 1, 1]), vec![3, 2, 2]);
        // 10 across 1:1:2 → ideals 2.5, 2.5, 5 → the two halves tie,
        // lowest id takes the leftover (and the total is exact)
        let s = shares(10, &[1, 1, 2]);
        assert_eq!(s.iter().sum::<usize>(), 10);
        assert_eq!(s, vec![3, 2, 5]);
    }

    #[test]
    fn floor_admits_everyone_even_when_oversubscribed() {
        // 2 threads, 5 active tenants: everyone still gets 1
        let s = shares(2, &[1, 1, 1, 1, 1]);
        assert!(s.iter().all(|&x| x >= 1), "{s:?}");
        // a heavy weight cannot starve a light one
        let s = shares(4, &[100, 1]);
        assert_eq!(s, vec![4, 1].into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn exact_budgets_are_fully_distributed() {
        for budget in 1..=16 {
            for ws in [vec![1u32, 1], vec![2, 3, 5], vec![1, 1, 1, 1]] {
                let s = shares(budget, &ws);
                let total: usize = s.iter().sum();
                // with enough threads for a floor each, the split is exact
                if budget >= ws.len() {
                    assert_eq!(total, budget, "budget={budget} ws={ws:?} s={s:?}");
                }
            }
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(fair_shares(8, &[]).is_empty());
        // zero weights are treated as 1
        assert_eq!(shares(4, &[0, 0]), vec![2, 2]);
        // zero budget is raised to 1; the floor still admits both
        let s = shares(0, &[1, 1]);
        assert!(s.iter().all(|&x| x >= 1));
    }

    #[test]
    fn floor_tenants_keep_their_thread_under_churn() {
        // regression: a lightweight tenant whose proportional share rounds
        // to zero must hold its 1-thread floor no matter how the rest of
        // the active set churns (joins, leaves, weight bumps, budget
        // resizes). Model churn as a random walk and pin the invariants
        // every step.
        scl_testkit::cases(200, 0x5c1_5eed, |rng| {
            let mut weights: Vec<(TenantId, u32)> = vec![(t(0), 1)];
            let mut next_id = 1usize;
            let mut budget = rng.range_usize(1, 16);
            for _ in 0..rng.range_usize(5, 30) {
                match rng.below(4) {
                    0 if weights.len() < 12 => {
                        // a heavy tenant joins and skews the ideals
                        weights.push((t(next_id), rng.range_usize(1, 1000) as u32));
                        next_id += 1;
                    }
                    1 if weights.len() > 1 => {
                        // churn out anyone but the floor-bound tenant 0
                        let gone = rng.range_usize(1, weights.len());
                        weights.remove(gone);
                    }
                    2 => {
                        let i = rng.range_usize(0, weights.len());
                        weights[i].1 = rng.range_usize(0, 1000) as u32;
                    }
                    _ => budget = rng.range_usize(1, 16),
                }
                let s = fair_shares(budget, &weights);
                assert_eq!(s.len(), weights.len());
                // every active tenant is admitted — the floor holds
                assert!(
                    s.iter().all(|&(_, sh)| sh >= 1),
                    "budget={budget} weights={weights:?} shares={s:?}"
                );
                // the floor only ever pushes the total above budget by
                // the number of rounded-to-zero tenants; it never grants
                // anyone beyond the whole budget
                assert!(
                    s.iter().all(|&(_, sh)| sh <= budget.max(1)),
                    "budget={budget} weights={weights:?} shares={s:?}"
                );
                let total: usize = s.iter().map(|&(_, sh)| sh).sum();
                assert!(
                    total >= budget.max(1).min(weights.len())
                        && total <= budget.max(1) + weights.len(),
                    "budget={budget} total={total} weights={weights:?}"
                );
                // shares are reported in input order for the input tenants
                for (got, want) in s.iter().zip(weights.iter()) {
                    assert_eq!(got.0, want.0);
                }
                // determinism: the same inputs always split the same way
                assert_eq!(s, fair_shares(budget, &weights));
            }
        });
    }

    #[test]
    fn floored_tenant_never_silently_loses_its_share_to_a_heavyweight() {
        // budget 4, weights 100:1 → 4 and the floor's 1; the heavyweight's
        // grant is uncut (the budget stays honest at claim time instead)
        assert_eq!(shares(4, &[100, 1]), vec![4, 1]);
        // ... and the same holds as more floor-bound tenants pile in
        assert_eq!(shares(4, &[100, 1, 1, 1]), vec![4, 1, 1, 1]);
    }
}
