//! Unit tests for the service mechanics (cache, batching, scheduler
//! wiring, accounting isolation). The heavyweight differential suite —
//! N tenants through `Serve` == N solo runs, outputs and reports
//! bit-for-bit, across policies and app plans — lives in the workspace's
//! `tests/serve_vs_solo.rs`.

use super::*;
use scl_core::ParArray;
use scl_machine::Work;
use scl_machine::{CostModel, Topology};

fn unit_machine(n: usize) -> Machine {
    Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
}

fn arr(k: i64) -> ParArray<i64> {
    ParArray::from_parts((k..k + 4).collect())
}

fn mixed_plan() -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(|x: &i64| x * 3)
        .then(Skel::rotate(1))
        .then(Skel::map_costed(|x: &i64| (x + 1, Work::flops(1))))
}

fn serve(exec: ExecPolicy) -> Serve<ParArray<i64>, ParArray<i64>> {
    Serve::new(ServePolicy::new(unit_machine(4)).with_exec(exec))
}

#[test]
fn same_plan_compiles_once_and_answers_match_solo() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let tickets: Vec<Ticket> = (0..10)
        .map(|k| srv.submit(t, mixed_plan(), arr(k)).unwrap())
        .collect();
    assert_eq!(srv.cached_plans(), 1, "ten submissions, one graph");
    assert_eq!(srv.stats().cache_misses, 1);
    assert_eq!(srv.stats().cache_hits, 9);
    srv.run_until_idle();

    let solo_plan = mixed_plan();
    let mut scl = Scl::new(unit_machine(4));
    for (k, ticket) in tickets.into_iter().enumerate() {
        let (out, report) = srv.take(ticket).unwrap();
        scl.reset();
        let expect = solo_plan.run(&mut scl, arr(k as i64));
        assert_eq!(out, expect, "request {k}");
        assert_eq!(report, scl.machine.report(), "request {k}");
    }
    assert_eq!(srv.tenant_served(t), 10);
    assert_eq!(srv.tenant_pending(t), 0);
}

#[test]
fn barrier_parameters_split_the_cache_without_keys() {
    // regression (code review): with an opaque map ahead of the barrier,
    // rotate(1) and rotate(2) used to collide on one cache entry and the
    // second tenant silently received the first plan's answers
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let p1 = Skel::map(|x: &i64| x + 1).then(Skel::rotate(1));
    let p2 = Skel::map(|x: &i64| x + 1).then(Skel::rotate(2));
    let a = srv.submit(t, p1, arr(0)).unwrap();
    let b = srv.submit(t, p2, arr(0)).unwrap();
    assert_eq!(srv.cached_plans(), 2, "distinct rotations, distinct graphs");
    srv.run_until_idle();
    assert_eq!(srv.take(a).unwrap().0.to_vec(), vec![2, 3, 4, 1]);
    assert_eq!(srv.take(b).unwrap().0.to_vec(), vec![3, 4, 1, 2]);
}

#[test]
fn submit_keyed_separates_structural_twins() {
    // structurally identical plans with different closure semantics MUST
    // be kept apart by the caller's key — this is the documented contract
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let double = Skel::map(|x: &i64| x * 2);
    let triple = Skel::map(|x: &i64| x * 3);
    let a = srv.submit_keyed(t, "double", double, arr(0)).unwrap();
    let b = srv.submit_keyed(t, "triple", triple, arr(0)).unwrap();
    assert_eq!(srv.cached_plans(), 2, "keys split the cache entries");
    srv.run_until_idle();
    assert_eq!(srv.take(a).unwrap().0.to_vec(), vec![0, 2, 4, 6]);
    assert_eq!(srv.take(b).unwrap().0.to_vec(), vec![0, 3, 6, 9]);
}

#[test]
fn batch_window_bounds_each_round() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Sequential)
            .with_batch_window(4),
    );
    let t = srv.add_tenant("t");
    for k in 0..10 {
        srv.submit(t, mixed_plan(), arr(k)).unwrap();
    }
    assert_eq!(srv.step(), 4, "first round serves one window");
    assert_eq!(srv.pending_requests(), 6);
    assert_eq!(srv.step(), 4);
    assert_eq!(srv.step(), 2, "last round serves the remainder");
    assert_eq!(srv.stats().batches, 3);
}

#[test]
fn unfusable_plans_serve_eagerly_and_uncached() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let opaque = Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| scl.rotate(1, &a));
    let ticket = srv.submit(t, opaque, arr(0)).unwrap();
    // served immediately: no cache entry, no pending work
    assert!(srv.is_ready(ticket));
    assert_eq!(srv.cached_plans(), 0);
    assert_eq!(srv.stats().eager_runs, 1);
    let (out, _) = srv.take(ticket).unwrap();
    assert_eq!(out.to_vec(), vec![1, 2, 3, 0]);
}

#[test]
fn oversized_inputs_are_rejected_at_submit() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let err = srv
        .submit(t, mixed_plan(), ParArray::from_parts((0..9).collect()))
        .unwrap_err();
    assert_eq!(
        err,
        SclError::MachineTooSmall {
            needed: 9,
            procs: 4
        }
    );
    assert_eq!(srv.stats().requests, 0, "rejected requests never count");
    assert_eq!(srv.pending_requests(), 0);
}

#[test]
fn lru_eviction_keeps_the_cache_at_cap() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Sequential)
            .with_plan_cache_cap(2),
    );
    let t = srv.add_tenant("t");
    // three distinct plans (distinct keys), interleaved with service
    for (i, key) in ["a", "b", "c"].iter().enumerate() {
        srv.submit_keyed(t, key, mixed_plan(), arr(i as i64))
            .unwrap();
        srv.run_until_idle();
    }
    assert_eq!(srv.cached_plans(), 2, "cap holds");
    assert_eq!(srv.stats().evictions, 1, "oldest idle entry evicted");
    // resubmitting the evicted plan recompiles: 3 initial misses + 1
    srv.submit_keyed(t, "a", mixed_plan(), arr(9)).unwrap();
    srv.run_until_idle();
    assert_eq!(srv.stats().cache_misses, 4);
}

#[test]
fn cache_cap_zero_recompiles_every_submission() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Sequential)
            .with_plan_cache_cap(0),
    );
    let t = srv.add_tenant("t");
    for k in 0..3 {
        srv.submit(t, mixed_plan(), arr(k)).unwrap();
        srv.run_until_idle();
    }
    assert_eq!(srv.stats().cache_misses, 3, "cold path: compile per call");
    assert_eq!(srv.cached_plans(), 0);
}

#[test]
fn shares_follow_weights_and_activity() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_threads(8),
    );
    let a = srv.add_tenant("a");
    let b = srv.add_tenant_weighted("b", 3);
    assert!(srv.shares().is_empty(), "no pending work, no shares");

    srv.submit(a, mixed_plan(), arr(0)).unwrap();
    assert_eq!(srv.shares(), vec![(a, 8)], "sole active tenant takes all");

    srv.submit(b, mixed_plan(), arr(1)).unwrap();
    let shares: std::collections::HashMap<TenantId, usize> = srv.shares().into_iter().collect();
    assert_eq!(shares[&a], 2);
    assert_eq!(shares[&b], 6, "weight 3 takes 3x the share");

    srv.run_until_idle();
    assert!(srv.shares().is_empty(), "finished tenants leave the split");
    assert_eq!(srv.thread_budget().in_use(), 0, "leases all returned");
}

#[test]
fn reports_isolate_tenants_from_each_other() {
    // two tenants share one compiled graph; each request's report must be
    // exactly a solo run's — tenant b's heavier traffic must not leak
    // into tenant a's accounting
    let mut srv = serve(ExecPolicy::Sequential);
    let a = srv.add_tenant("a");
    let b = srv.add_tenant("b");
    let ta = srv.submit(a, mixed_plan(), arr(0)).unwrap();
    let tb: Vec<Ticket> = (1..6)
        .map(|k| srv.submit(b, mixed_plan(), arr(k)).unwrap())
        .collect();
    srv.run_until_idle();

    let solo = mixed_plan();
    let mut scl = Scl::new(unit_machine(4));
    let (_, report_a) = srv.take(ta).unwrap();
    let expect_a = {
        scl.reset();
        let _ = solo.run(&mut scl, arr(0));
        scl.machine.report()
    };
    assert_eq!(report_a, expect_a, "tenant a's report is solo-identical");
    for (i, tk) in tb.into_iter().enumerate() {
        let (_, report) = srv.take(tk).unwrap();
        scl.reset();
        let _ = solo.run(&mut scl, arr(i as i64 + 1));
        assert_eq!(report, scl.machine.report(), "tenant b request {i}");
    }
}

#[test]
fn optimized_submissions_cache_the_raised_plan() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let plan = || {
        Skel::map_sym("double", reg)
            .then(Skel::rotate(3))
            .then(Skel::rotate(-3))
            .then(Skel::map_sym("inc", reg))
    };
    let tickets: Vec<Ticket> = (0..6)
        .map(|k| srv.submit_optimized(t, "", &plan(), reg, arr(k)).unwrap())
        .collect();
    assert_eq!(srv.stats().cache_misses, 1, "optimize+raise+compile once");
    assert_eq!(srv.stats().cache_hits, 5);
    srv.run_until_idle();

    let solo = plan();
    for (k, ticket) in tickets.into_iter().enumerate() {
        let (out, report) = srv.take(ticket).unwrap();
        let mut scl = Scl::new(unit_machine(4));
        let (expect, log) = scl.run_optimized(&solo, reg, arr(k as i64));
        assert!(!log.is_empty(), "rotations cancel, maps fuse");
        assert_eq!(out, expect, "request {k}");
        assert_eq!(report, scl.machine.report(), "request {k}");
    }
}

#[test]
fn optimized_and_plain_submissions_never_share_a_graph() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let plan = || Skel::map_sym("inc", reg).then(Skel::rotate(1));
    let p = srv.submit(t, plan(), arr(0)).unwrap();
    let o = srv.submit_optimized(t, "", &plan(), reg, arr(0)).unwrap();
    assert_eq!(srv.cached_plans(), 2, "modes salt the fingerprint apart");
    srv.run_until_idle();
    // same program, same answer, different execution paths
    assert_eq!(srv.take(p).unwrap().0, srv.take(o).unwrap().0);
}

#[test]
fn non_lowerable_optimized_submissions_fall_back_like_run_optimized() {
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let opaque = Skel::map(|x: &i64| x * 7); // fusable but not lowerable
    let ticket = srv.submit_optimized(t, "", &opaque, reg, arr(1)).unwrap();
    assert!(srv.is_ready(ticket), "fallback serves immediately");
    assert_eq!(srv.stats().eager_runs, 1);
    let (out, report) = srv.take(ticket).unwrap();

    let mut scl = Scl::new(unit_machine(4));
    let (expect, log) = scl.run_optimized(&opaque, reg, arr(1));
    assert!(log.is_empty());
    assert_eq!(out, expect);
    assert_eq!(report, scl.machine.report());
}

#[test]
fn threaded_service_matches_sequential_answers() {
    let mk = |exec| {
        let mut srv = serve(exec);
        let t = srv.add_tenant("t");
        let tickets: Vec<Ticket> = (0..20)
            .map(|k| srv.submit(t, mixed_plan(), arr(k)).unwrap())
            .collect();
        srv.run_until_idle();
        tickets
            .into_iter()
            .map(|tk| srv.take(tk).unwrap())
            .collect::<Vec<_>>()
    };
    let seq = mk(ExecPolicy::Sequential);
    let thr = mk(ExecPolicy::Threads(3));
    let cost = mk(ExecPolicy::cost_driven());
    for (k, ((s, sr), (t, tr))) in seq.iter().zip(&thr).enumerate() {
        assert_eq!(s, t, "request {k}");
        assert_eq!(sr, tr, "request {k} report");
    }
    for (k, ((s, sr), (c, cr))) in seq.iter().zip(&cost).enumerate() {
        assert_eq!(s, c, "request {k}");
        assert_eq!(sr, cr, "request {k} report");
    }
}

#[test]
fn panicking_plan_fails_only_its_batch_with_a_typed_error() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    // one healthy plan and one that panics on a specific input, in the
    // same service round
    let healthy = srv.submit(t, mixed_plan(), arr(0)).unwrap();
    let bomb = Skel::map(|x: &i64| if *x == 42 { panic!("boom") } else { *x });
    let doomed = srv
        .submit_keyed(
            t,
            "bomb",
            bomb,
            ParArray::from_parts(vec![41i64, 42, 43, 44]),
        )
        .unwrap();

    // the round never unwinds: the crashing plan resolves its own ticket
    // to a typed error, the healthy request delivers normally
    srv.run_until_idle();
    assert!(srv.is_ready(healthy), "healthy batch still delivered");
    assert!(srv.is_ready(doomed), "failed ticket resolves, not leaks");
    match srv.outcome(doomed).unwrap() {
        Err(RequestError::StagePanic {
            stage,
            part,
            message,
        }) => {
            assert_eq!(stage, "map");
            assert_eq!(part, 1, "the 42 sits in part 1");
            assert_eq!(message, "boom");
        }
        other => panic!("expected a typed stage panic, got {other:?}"),
    }
    assert_eq!(srv.stats().failed, 1);
    assert_eq!(srv.stats().panics, 1);
    assert_eq!(srv.tenant_failed(t), 1);
    assert_eq!(srv.tenant_pending(t), 0, "no leaked pending counts");
    assert_eq!(srv.pending_requests(), 0);

    // the crashed graph is torn down (its entry stays, graphless) and
    // the service keeps serving
    assert_eq!(srv.cached_plans(), 1, "only the healthy graph stays live");
    let after = srv.submit(t, mixed_plan(), arr(5)).unwrap();
    srv.run_until_idle();
    assert!(srv.is_ready(after));
    let mut scl = Scl::new(unit_machine(4));
    assert_eq!(
        srv.take(after).unwrap().0,
        mixed_plan().run(&mut scl, arr(5))
    );
}

#[test]
fn crashed_plan_fails_queued_requests_beyond_the_batch() {
    // window 1: the second request is still queued when the first one's
    // batch crashes — it must fail with the plan (same typed error), not
    // leak as forever-pending
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Sequential)
            .with_batch_window(1),
    );
    let t = srv.add_tenant("t");
    let bomb = || Skel::map(|x: &i64| if *x >= 0 { panic!("boom") } else { *x });
    let first = srv.submit(t, bomb(), arr(0)).unwrap();
    let queued = srv.submit(t, bomb(), arr(1)).unwrap();
    assert_eq!(srv.pending_requests(), 2);

    srv.step();
    assert!(matches!(
        srv.outcome(first),
        Some(Err(RequestError::StagePanic { .. }))
    ));
    assert!(
        matches!(
            srv.outcome(queued),
            Some(Err(RequestError::StagePanic { .. }))
        ),
        "queued request fails with the plan"
    );
    assert_eq!(srv.stats().failed, 2);
    assert_eq!(srv.stats().panics, 2);
    assert_eq!(srv.tenant_pending(t), 0, "no leaked pending counts");
    assert_eq!(srv.pending_requests(), 0);
    assert_eq!(srv.cached_plans(), 0, "the crashed graph is torn down");
}

#[test]
fn crashed_plan_rebuilds_on_next_submission() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    // panics only on inputs containing 42: the resubmission (structurally
    // equal, healthy input) must succeed through a rebuilt graph
    let flaky = || Skel::map(|x: &i64| if *x == 42 { panic!("boom") } else { x * 2 });
    let doomed = srv
        .submit(t, flaky(), ParArray::from_parts(vec![41i64, 42, 43, 44]))
        .unwrap();
    srv.run_until_idle();
    assert!(matches!(
        srv.outcome(doomed),
        Some(Err(RequestError::StagePanic { .. }))
    ));
    assert_eq!(srv.cached_plans(), 0, "torn down");

    let retry = srv.submit(t, flaky(), arr(0)).unwrap();
    assert_eq!(srv.stats().rebuilds, 1, "the hit rebuilt the graph");
    assert_eq!(srv.cached_plans(), 1);
    srv.run_until_idle();
    let (out, _) = srv.take(retry).unwrap();
    assert_eq!(out.to_vec(), vec![0, 2, 4, 6]);
    assert_eq!(srv.stats().quarantines, 0, "a success resets the count");
}

#[test]
fn repeated_crashes_quarantine_the_plan_until_eviction() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Sequential)
            .with_quarantine_after(2),
    );
    let t = srv.add_tenant("t");
    let bomb = || Skel::map(|x: &i64| if *x >= 0 { panic!("boom") } else { *x });

    // two consecutive crashed batches hit the limit
    for _ in 0..2 {
        let tk = srv.submit(t, bomb(), arr(0)).unwrap();
        srv.run_until_idle();
        assert!(matches!(
            srv.outcome(tk),
            Some(Err(RequestError::StagePanic { .. }))
        ));
    }
    assert_eq!(srv.stats().quarantines, 1);
    assert_eq!(srv.quarantined_plans(), 1);

    // further submissions fail fast without compiling or running
    let rejected = srv.submit(t, bomb(), arr(0)).unwrap();
    assert!(
        matches!(
            srv.outcome(rejected),
            Some(Err(RequestError::Quarantined { crashes: 2 }))
        ),
        "quarantined plans reject at submit"
    );
    assert_eq!(srv.stats().rebuilds, 1, "only the pre-quarantine rebuild");
    assert_eq!(srv.pending_requests(), 0);

    // eviction pardons: the next submission recompiles from scratch
    srv.evict_idle(usize::MAX);
    assert_eq!(srv.quarantined_plans(), 0);
    let pardoned = srv
        .submit(
            t,
            Skel::map(|x: &i64| if *x > 100 { panic!() } else { *x }),
            arr(0),
        )
        .unwrap();
    srv.run_until_idle();
    assert!(srv.take(pardoned).is_some());
}

#[test]
fn panicking_eager_fallback_settles_accounting() {
    // an unfusable plan that panics must not leak a forever-pending
    // ticket (which would dilute every future fair-share split) — and
    // must not unwind through submit
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let bomb = Skel::from_fn(|_: &mut Scl, _: ParArray<i64>| -> ParArray<i64> { panic!("boom") });
    let tk = srv.submit(t, bomb, arr(0)).unwrap();
    match srv.outcome(tk).unwrap() {
        Err(RequestError::Panicked { message }) => assert_eq!(message, "boom"),
        other => panic!("expected a typed eager panic, got {other:?}"),
    }
    assert_eq!(srv.tenant_pending(t), 0, "no leaked pending count");
    assert_eq!(srv.stats().failed, 1);
    assert_eq!(srv.stats().eager_runs, 0, "failed runs are not served runs");
    assert!(srv.shares().is_empty(), "tenant no longer counts as active");
    // the service keeps serving
    let ok = srv.submit(t, mixed_plan(), arr(1)).unwrap();
    srv.run_until_idle();
    assert!(srv.is_ready(ok));
}

#[test]
fn expired_deadlines_shed_queued_work_and_short_circuit() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
    let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);

    // an already-expired cached-path request fails typed, without running
    let dead = srv
        .submit_keyed_deadline(t, "", mixed_plan(), arr(0), Some(past))
        .unwrap();
    // a far-future deadline behaves exactly like no deadline
    let alive = srv
        .submit_keyed_deadline(t, "", mixed_plan(), arr(1), Some(far))
        .unwrap();
    srv.run_until_idle();
    assert!(matches!(
        srv.outcome(dead),
        Some(Err(RequestError::DeadlineExceeded))
    ));
    let mut scl = Scl::new(unit_machine(4));
    assert_eq!(
        srv.take(alive).unwrap().0,
        mixed_plan().run(&mut scl, arr(1))
    );
    assert_eq!(srv.stats().deadline_expired, 1);
    assert_eq!(srv.stats().panics, 0, "expiry is not a crash");
    assert_eq!(srv.cached_plans(), 1, "no teardown on expiry");

    // the eager fallback honours the same contract
    let opaque = Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| scl.rotate(1, &a));
    let dead_eager = srv
        .submit_keyed_deadline(t, "", opaque, arr(0), Some(past))
        .unwrap();
    assert!(matches!(
        srv.outcome(dead_eager),
        Some(Err(RequestError::DeadlineExceeded))
    ));
    assert_eq!(srv.tenant_pending(t), 0);
}

#[test]
fn eager_fallbacks_claim_the_shared_budget() {
    // an unfusable plan must not run wider than the budget allows: hold
    // the whole budget externally and watch the fallback degrade to one
    // thread (observable through the lease accounting)
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_threads(2),
    );
    let t = srv.add_tenant("t");
    let budget = Arc::clone(srv.thread_budget());
    let hold = budget.try_claim(2, 2).unwrap();
    assert_eq!(budget.available(), 0);
    let opaque = Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| scl.rotate(1, &a));
    let tk = srv.submit(t, opaque, arr(0)).unwrap();
    assert!(srv.is_ready(tk), "fallback still admits at width 1");
    drop(hold);
    assert_eq!(budget.in_use(), 0, "fallback leases are returned");
    // with capacity free the fallback claims (and returns) its width
    let opaque = Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| scl.rotate(1, &a));
    let tk = srv.submit(t, opaque, arr(1)).unwrap();
    assert!(srv.is_ready(tk));
    assert_eq!(budget.in_use(), 0);
}

#[test]
#[should_panic(expected = "unregistered tenant")]
fn unknown_tenants_are_rejected() {
    let mut srv = serve(ExecPolicy::Sequential);
    let _ = srv.submit(TenantId(3), mixed_plan(), arr(0));
}

// ---- autonomic-manager actuator hooks (driven by scl-net's MAPE loop) ----

#[test]
fn actuator_setters_clamp_and_read_back() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    srv.set_batch_window(7);
    assert_eq!(srv.batch_window(), 7);
    srv.set_batch_window(0);
    assert_eq!(srv.batch_window(), 1, "window clamps to >= 1");
    srv.set_tenant_weight(t, 9);
    assert_eq!(srv.tenant_weight(t), 9);
    srv.set_tenant_weight(t, 0);
    assert_eq!(srv.tenant_weight(t), 1, "weight clamps to >= 1");
    srv.set_width_cap(3);
    assert_eq!(srv.width_cap(), 3);
    srv.set_width_cap(0);
    assert_eq!(srv.width_cap(), 1, "width cap clamps to >= 1");
}

#[test]
fn actuator_changes_never_change_answers() {
    // the differential guarantee scl-net relies on: every knob the MAPE
    // loop can turn affects *when/how wide* requests run, never *what*
    // they compute — so we can mutate all of them mid-stream
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_threads(4),
    );
    let t = srv.add_tenant("t");
    let mut tickets = Vec::new();
    for k in 0..12 {
        tickets.push(srv.submit(t, mixed_plan(), arr(k)).unwrap());
        match k % 4 {
            0 => srv.set_batch_window(1 + (k as usize % 3)),
            1 => srv.set_tenant_weight(t, 1 + k as u32),
            2 => srv.set_width_cap(1 + (k as usize % 4)),
            _ => {
                srv.step();
            }
        }
    }
    srv.run_until_idle();
    let solo = mixed_plan();
    let mut scl = Scl::new(unit_machine(4));
    for (k, ticket) in tickets.into_iter().enumerate() {
        let (out, report) = srv.take(ticket).unwrap();
        scl.reset();
        let expect = solo.run(&mut scl, arr(k as i64));
        assert_eq!(out, expect, "request {k}");
        assert_eq!(report, scl.machine.report(), "request {k}");
    }
}

#[test]
fn shrinking_the_cache_cap_evicts_immediately_and_counts() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    for k in 0..4 {
        let key = format!("plan-{k}");
        let tk = srv
            .submit_keyed(t, &key, Skel::map(|x: &i64| x + 1), arr(k))
            .unwrap();
        srv.run_until_idle();
        assert!(srv.is_ready(tk));
    }
    assert_eq!(srv.cached_plans(), 4);
    let before = srv.stats().evictions;
    srv.set_plan_cache_cap(2);
    assert_eq!(srv.cached_plans(), 2, "cap change takes effect immediately");
    assert_eq!(srv.plan_cache_cap(), 2);
    assert_eq!(
        srv.stats().evictions,
        before + 2,
        "memory-pressure evictions show up in the serve stats"
    );
}

#[test]
fn evict_idle_skips_plans_with_queued_work() {
    let mut srv = serve(ExecPolicy::Sequential);
    let t = srv.add_tenant("t");
    // one idle entry (drained), one busy entry (work still queued)
    let done = srv
        .submit_keyed(t, "idle", Skel::map(|x: &i64| x + 1), arr(0))
        .unwrap();
    srv.run_until_idle();
    assert!(srv.is_ready(done));
    let busy = srv
        .submit_keyed(t, "busy", Skel::map(|x: &i64| x * 2), arr(1))
        .unwrap();
    assert_eq!(srv.cached_plans(), 2);

    let before = srv.stats().evictions;
    assert_eq!(srv.evict_idle(5), 1, "only the idle graph is reclaimable");
    assert_eq!(srv.stats().evictions, before + 1);
    assert_eq!(srv.cached_plans(), 1, "the busy entry survives");
    assert_eq!(srv.evict_idle(5), 0, "nothing idle left to evict");

    // the surviving entry still runs to completion
    srv.run_until_idle();
    assert_eq!(srv.take(busy).unwrap().0.to_vec(), vec![2, 4, 6, 8]);

    // a re-submission of the evicted key recompiles: observable as a miss
    let (h0, m0) = (srv.stats().cache_hits, srv.stats().cache_misses);
    let again = srv
        .submit_keyed(t, "idle", Skel::map(|x: &i64| x + 1), arr(0))
        .unwrap();
    assert_eq!(
        srv.stats().cache_misses,
        m0 + 1,
        "eviction forced a rebuild"
    );
    assert_eq!(srv.stats().cache_hits, h0);
    srv.run_until_idle();
    assert_eq!(srv.take(again).unwrap().0.to_vec(), vec![1, 2, 3, 4]);
}

#[test]
fn width_cap_bounds_the_claimed_lease() {
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
        ServePolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_threads(4),
    );
    let t = srv.add_tenant("t");
    srv.set_width_cap(1);
    let budget = Arc::clone(srv.thread_budget());
    for k in 0..3 {
        let _ = srv.submit(t, mixed_plan(), arr(k)).unwrap();
    }
    srv.run_until_idle();
    assert_eq!(budget.in_use(), 0, "leases returned after the drain");
    assert!(
        budget.peak_in_use() <= 1,
        "cap=1 service never claimed wider than one thread (peak {})",
        budget.peak_in_use()
    );
}
