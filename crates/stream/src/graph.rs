//! The persistent operator graph behind [`StreamExec`](crate::StreamExec):
//! farm stages (segment replicas over bounded queues) linked by pump-side
//! hops (barrier chains), plus the pump loop and the autonomic width
//! controller.
//!
//! Threading model: farm replicas are the only worker threads; everything
//! else — barrier execution, reordering, relaying between stages,
//! completion — happens on the *pumping* thread (whoever calls
//! `push`/`pop`/`drain`). That keeps the stateful pieces (`FnMut` barrier
//! closures, possibly `Rc`-shared with the plan's eager path) on a single
//! thread with no synchronisation, while the pure segments overlap across
//! items.

use crate::{Envelope, FarmStats, StageStat};
use scl_core::{panic_message, BarrierOp, BranchOp, ErasedArr, PlanOp, RequestError, SegmentOp};
use scl_exec::{
    ring_mpmc, spawn_farm_workers, spawn_stage_workers, Bounded, ExecPolicy, RingReceiver,
    RingSender, ThreadPool, TryRecv, WidthGate,
};
use scl_machine::Machine;
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An operator the pump executes inline while relaying an item across a
/// stage boundary.
enum PumpOp {
    /// A fusion barrier: stateful, runs in stream order.
    Barrier(BarrierOp<'static>),
    /// A fused segment under a 1-thread policy: the whole graph degrades
    /// to synchronous inline execution with zero worker threads.
    Inline(Arc<SegmentOp<'static>>),
    /// A plan-DAG branch whose shape resists the pipelined split
    /// (choice arms, arms with internal barriers): the pump runs the
    /// whole branch inline — split/decide, arm chains, join — exactly as
    /// [`BranchOp::try_apply`] defines it.
    Branch(Box<BranchOp<'static>>),
}

impl PumpOp {
    fn label(&self) -> String {
        match self {
            PumpOp::Barrier(b) => b.label().to_string(),
            PumpOp::Inline(seg) => seg.label(),
            PumpOp::Branch(b) => b.display_label(),
        }
    }
}

/// Pump-thread service counters for one hop operator (no atomics needed:
/// only the pump touches them).
#[derive(Default)]
struct OpStat {
    items: u64,
    busy_nanos: u64,
}

/// The relay between two farm stages (or stream entry/exit): the barrier
/// chain applied while an item crosses — each operator with its own
/// service counters — plus a one-item park slot for when the downstream
/// queue is momentarily full.
#[derive(Default)]
struct Hop {
    ops: Vec<(PumpOp, OpStat)>,
    pending: Option<Envelope>,
}

impl Hop {
    fn new() -> Hop {
        Hop::default()
    }

    fn push_op(&mut self, op: PumpOp) {
        self.ops.push((op, OpStat::default()));
    }
}

/// A farm's stage-to-stage links: the lock-free ring fast path, or the
/// mutex+condvar fallback.
///
/// **Rings** exploit the farm's known topology — exactly one pumping
/// thread on each side — as two SPSC lane matrices: a 1×W input matrix
/// (pump → replicas, the pump holds the [`RingSender`]) and a W×1 output
/// matrix (replicas → pump). Each replica owns its private (receiver,
/// sender) lane pair, so the whole `take → work → emit` loop is
/// lock-free; the width gate steers the **pump's routing**
/// ([`RingSender::try_send_within`]) instead of gating the workers — a
/// narrowed-off replica just stops receiving new items, drains its own
/// ring, and parks in `recv` for free.
///
/// **Locked** ([`Bounded`]) remains for link shapes the rings can't
/// honour — a per-link capacity smaller than the replica count would
/// weaken the backpressure bound (lanes must hold ≥ 1 item each) — and
/// as the explicitly selectable fallback
/// ([`with_locked_links`](crate::StreamPolicy::with_locked_links)).
enum FarmLinks {
    Rings {
        in_tx: RingSender<Envelope>,
        out_rx: RingReceiver<Envelope>,
    },
    Locked {
        in_q: Bounded<Envelope>,
        out_q: Bounded<Envelope>,
    },
}

/// One farm stage: a fused compute segment replicated across gated
/// workers, with the pump-side reorder buffer that restores stream order.
pub(crate) struct Farm {
    label: String,
    seg: Arc<SegmentOp<'static>>,
    links: FarmLinks,
    /// The replicas' private lane ends (ring farms only), moved out by
    /// [`Farm::spawn`].
    worker_links: Vec<(RingReceiver<Envelope>, RingSender<Envelope>)>,
    /// Replicas currently allowed to claim work (the autonomic gate;
    /// with ring links it steers the pump's routing, with locked links
    /// workers past the width park on its condvar).
    active: Arc<WidthGate>,
    /// Current ceiling for `active` (≤ `spawned`): the policy/cost-model
    /// ceiling clamped by the graph's external width cap.
    max_width: AtomicUsize,
    /// The policy-side ceiling alone (exec policy cap, possibly lowered by
    /// the cost model at calibration) — kept so an external cap change can
    /// recompute `max_width` without re-calibrating.
    policy_cap: usize,
    /// Workers actually spawned — the hard ceiling.
    spawned: usize,
    stats: Arc<FarmStats>,
    /// Completed-but-out-of-order items, keyed by stream position.
    reorder: BTreeMap<u64, Envelope>,
    /// Next stream position to release downstream.
    expect: u64,
    // controller sampling state
    last_busy: u64,
    last_tick: Instant,
}

impl Farm {
    fn new(
        seg: Arc<SegmentOp<'static>>,
        capacity: usize,
        width_cap: usize,
        adaptive: bool,
        locked_links: bool,
    ) -> Farm {
        // rings only when each of the `width_cap` lanes can hold at
        // least one item without exceeding the configured capacity —
        // otherwise the lane split would either starve replicas or
        // weaken the backpressure bound — and when not explicitly
        // overridden
        let (links, worker_links) = if !locked_links && capacity >= width_cap {
            let (mut in_txs, in_rxs) = ring_mpmc(1, width_cap, capacity);
            let (out_txs, mut out_rxs) = ring_mpmc(width_cap, 1, capacity);
            (
                FarmLinks::Rings {
                    in_tx: in_txs.remove(0),
                    out_rx: out_rxs.remove(0),
                },
                in_rxs.into_iter().zip(out_txs).collect(),
            )
        } else {
            (
                FarmLinks::Locked {
                    in_q: Bounded::new(capacity),
                    out_q: Bounded::new(capacity),
                },
                Vec::new(),
            )
        };
        Farm {
            label: seg.label(),
            seg,
            links,
            worker_links,
            active: WidthGate::new(if adaptive { 1 } else { width_cap }),
            max_width: AtomicUsize::new(width_cap),
            policy_cap: width_cap,
            spawned: width_cap,
            stats: Arc::new(FarmStats::default()),
            reorder: BTreeMap::new(),
            expect: 0,
            last_busy: 0,
            last_tick: Instant::now(),
        }
    }

    /// Spawn this farm's replicas: each claims envelopes off its input
    /// link, runs the segment against the item's own machine context
    /// (charging it eager-style), and emits downstream — blocking there
    /// when full, so backpressure reaches the replicas too. A panicking
    /// stage poisons the envelope with a typed [`RequestError`] instead of
    /// killing the worker; an item whose deadline already passed
    /// short-circuits as [`RequestError::DeadlineExceeded`] without
    /// occupying the replica.
    fn spawn(&mut self, pool: &ThreadPool, summed: bool) {
        let seg = Arc::clone(&self.seg);
        let stats = Arc::clone(&self.stats);
        let process = move |env: Envelope| -> Envelope {
            let t0 = Instant::now();
            let Envelope {
                seq,
                mut scl,
                deadline,
                payload,
            } = env;
            let payload = match payload {
                Ok(_) if deadline.is_some_and(|d| Instant::now() >= d) => {
                    Err(RequestError::DeadlineExceeded)
                }
                Ok(val) => {
                    if summed {
                        seg.try_apply_summed(&mut scl, val)
                    } else {
                        seg.try_apply(&mut scl, val)
                    }
                }
                poisoned => poisoned,
            };
            stats
                .busy_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            stats.items.fetch_add(1, Ordering::Relaxed);
            Envelope {
                seq,
                scl,
                deadline,
                payload,
            }
        };
        // crew handles dropped in both arms: replicas never panic
        // (poison instead), and the pool joins the threads on shutdown
        match &self.links {
            FarmLinks::Rings { .. } => {
                // each replica owns a private lane pair: its loop is
                // lock-free end to end, and admission happens upstream
                // in the pump's routing (no gate in the loop)
                let links = std::mem::take(&mut self.worker_links);
                drop(spawn_farm_workers(
                    pool,
                    links,
                    Arc::new(move |_replica, env| process(env)),
                ));
            }
            FarmLinks::Locked { in_q, out_q } => {
                let out = out_q.clone();
                drop(spawn_stage_workers(
                    pool,
                    self.spawned,
                    Arc::clone(&self.active),
                    in_q.clone(),
                    Arc::new(move |_replica, env| {
                        // a closed output means the graph is shutting
                        // down: drop the result
                        let _ = out.send(process(env));
                    }),
                ));
            }
        }
    }

    /// Items queued toward the replicas right now (racy gauge).
    fn in_depth(&self) -> usize {
        match &self.links {
            FarmLinks::Rings { in_tx, .. } => in_tx.len(),
            FarmLinks::Locked { in_q, .. } => in_q.len(),
        }
    }

    /// Input capacity the pump can currently route into: for ring links
    /// only the gate-admitted lanes count (each lane holds
    /// `capacity / spawned`), for a locked link it is the whole queue.
    /// The controller's widen threshold is relative to this, so a
    /// narrow farm still detects backlog when its few admitted lanes
    /// fill up.
    fn in_routable_capacity(&self) -> usize {
        match &self.links {
            FarmLinks::Rings { in_tx, .. } => {
                let lane = (in_tx.capacity() / self.spawned).max(1);
                lane * self.active.width().min(self.spawned)
            }
            FarmLinks::Locked { in_q, .. } => in_q.capacity(),
        }
    }
}

/// The compiled graph; see the [module docs](self).
pub(crate) struct Graph {
    pub(crate) farms: Vec<Farm>,
    /// `farms.len() + 1` hops: hop `h` relays into farm `h`, the last hop
    /// relays into `completed`.
    hops: Vec<Hop>,
    /// The one-item entry slot `push` fills; the pump moves it into hop 0.
    pub(crate) ingress: Option<Envelope>,
    /// Finished envelopes in stream order, harvested by the executor.
    pub(crate) completed: VecDeque<Envelope>,
    capacity: usize,
    /// Per-farm replica cap from the [`ExecPolicy`].
    exec_cap: usize,
    /// External width cap ([`Graph::set_width_cap`]) clamping every farm's
    /// ceiling — `usize::MAX` when nothing outside the graph constrains it.
    extern_cap: usize,
    /// Whether calibration consults the cost model.
    cost_driven: bool,
    /// Whether segments charge fused-style (one summed event per part)
    /// instead of replaying eager per-stage charges.
    summed_charging: bool,
    adaptive: bool,
    /// The persistent worker pool, held for its drop (which joins the
    /// replica threads); `None` when the graph has no farms. The `Graph`
    /// drop impl closes every channel first, so the workers the pool
    /// joins are guaranteed to exit.
    _pool: Option<ThreadPool>,
}

impl Graph {
    /// Compile an operator list into a live graph. A 1-thread policy
    /// inlines every segment on the pump (zero worker threads); otherwise
    /// each segment becomes a farm capped at the policy's thread count.
    pub(crate) fn build(
        ops: Vec<PlanOp<'static>>,
        capacity: usize,
        exec: ExecPolicy,
        adaptive: bool,
        summed_charging: bool,
        locked_links: bool,
    ) -> Graph {
        let exec_cap = match exec {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Threads(t) | ExecPolicy::CostDriven { threads: t } => t.max(1),
        };
        let inline = exec_cap <= 1;
        let mut hops = vec![Hop::new()];
        let mut farms: Vec<Farm> = Vec::new();
        for op in ops {
            match op {
                PlanOp::Barrier(b) => hops
                    .last_mut()
                    .expect("hops start non-empty")
                    .push_op(PumpOp::Barrier(b)),
                PlanOp::Segment(seg) => {
                    let seg = Arc::new(seg);
                    if inline {
                        hops.last_mut()
                            .expect("hops start non-empty")
                            .push_op(PumpOp::Inline(seg));
                    } else {
                        farms.push(Farm::new(seg, capacity, exec_cap, adaptive, locked_links));
                        hops.push(Hop::new());
                    }
                }
                // A branch with two pure segment arms decomposes into the
                // pipelined form — enter (split + park right), left farm,
                // swap (unpark right, park left's result), right farm,
                // exit (unpark + join) — so both arms become real farm
                // stages that overlap across stream items. Anything else
                // (choice, arms with barriers) runs inline on the pump.
                PlanOp::Branch(b) => match b.into_pipelined() {
                    Ok(p) if !inline => {
                        hops.last_mut()
                            .expect("hops start non-empty")
                            .push_op(PumpOp::Barrier(p.enter));
                        farms.push(Farm::new(
                            Arc::new(p.left),
                            capacity,
                            exec_cap,
                            adaptive,
                            locked_links,
                        ));
                        hops.push(Hop::new());
                        hops.last_mut()
                            .expect("hops grow with farms")
                            .push_op(PumpOp::Barrier(p.swap));
                        farms.push(Farm::new(
                            Arc::new(p.right),
                            capacity,
                            exec_cap,
                            adaptive,
                            locked_links,
                        ));
                        hops.push(Hop::new());
                        hops.last_mut()
                            .expect("hops grow with farms")
                            .push_op(PumpOp::Barrier(p.exit));
                    }
                    Ok(p) => {
                        // 1-thread policy: same op order, all on the pump
                        let hop = hops.last_mut().expect("hops start non-empty");
                        hop.push_op(PumpOp::Barrier(p.enter));
                        hop.push_op(PumpOp::Inline(Arc::new(p.left)));
                        hop.push_op(PumpOp::Barrier(p.swap));
                        hop.push_op(PumpOp::Inline(Arc::new(p.right)));
                        hop.push_op(PumpOp::Barrier(p.exit));
                    }
                    Err(b) => hops
                        .last_mut()
                        .expect("hops start non-empty")
                        .push_op(PumpOp::Branch(Box::new(b))),
                },
            }
        }
        let pool = if farms.is_empty() {
            None
        } else {
            let pool = ThreadPool::new(farms.iter().map(|f| f.spawned).sum());
            for farm in &mut farms {
                farm.spawn(&pool, summed_charging);
            }
            Some(pool)
        };
        Graph {
            farms,
            hops,
            ingress: None,
            completed: VecDeque::new(),
            capacity,
            exec_cap,
            extern_cap: usize::MAX,
            cost_driven: matches!(exec, ExecPolicy::CostDriven { .. }),
            summed_charging,
            adaptive,
            _pool: pool,
        }
    }

    /// Clamp every farm's width ceiling at `cap` active replicas (≥ 1) —
    /// the external control a shard scheduler drives when this graph's
    /// share of a host-wide thread budget changes. The cap composes with
    /// the policy/cost-model ceiling (the effective ceiling is the
    /// minimum) and survives re-calibration; widening restores headroom
    /// for the autonomic controller rather than forcing replicas active.
    pub(crate) fn set_width_cap(&mut self, cap: usize) {
        self.extern_cap = cap.max(1);
        for farm in &mut self.farms {
            let eff = farm.policy_cap.min(self.extern_cap).clamp(1, farm.spawned);
            farm.max_width.store(eff, Ordering::Relaxed);
            let active = farm.active.width();
            let want = if self.adaptive { active.min(eff) } else { eff };
            farm.active.set(want.max(1));
        }
    }

    /// The external width cap last set (`usize::MAX` when unset).
    pub(crate) fn width_cap(&self) -> usize {
        self.extern_cap
    }

    /// Refine each farm's width ceiling from the first item's payload:
    /// under a cost-driven policy, ask the machine's cost model whether
    /// farming a window of `capacity` items of this size across threads is
    /// worth the coordination at all, exactly as fused execution gates a
    /// segment ([`CostModel::fused_decision`]). Non-cost-driven policies
    /// keep the policy cap.
    ///
    /// [`CostModel::fused_decision`]: scl_machine::CostModel::fused_decision
    pub(crate) fn calibrate(&mut self, env: &Envelope, machine: &Machine) {
        if !self.cost_driven {
            return;
        }
        let item_bytes = item_bytes(env.payload.as_ref().ok());
        for farm in &mut self.farms {
            let d = machine.model().fused_decision(
                self.capacity.max(2),
                farm.seg.len(),
                item_bytes.max(1),
                self.exec_cap,
            );
            farm.policy_cap = d.threads.clamp(1, farm.spawned);
            let cap = farm.policy_cap.min(self.extern_cap).clamp(1, farm.spawned);
            farm.max_width.store(cap, Ordering::Relaxed);
            let active = farm.active.width();
            let want = if self.adaptive { active.min(cap) } else { cap };
            farm.active.set(want.max(1));
        }
    }

    /// Place one envelope on the entry slot (the caller has verified it
    /// is free).
    pub(crate) fn offer(&mut self, env: Envelope) {
        debug_assert!(self.ingress.is_none(), "ingress slot already occupied");
        self.ingress = Some(env);
    }

    /// One pump pass: walk the hops downstream-first (so freed capacity
    /// propagates upstream within a single pass), relaying every item
    /// that can move — out of reorder buffers in stream order, through
    /// the hop's barrier chain, into the next farm's queue or the
    /// completion list. Never blocks.
    pub(crate) fn pump(&mut self) {
        let n = self.farms.len();
        for h in (0..=n).rev() {
            loop {
                // a parked item goes first — order would break otherwise
                if let Some(env) = self.hops[h].pending.take() {
                    if let Err(env) = self.accept(h, env) {
                        self.hops[h].pending = Some(env);
                        break; // downstream still full: hop is stuck
                    }
                }
                let Some(env) = self.source_next(h) else {
                    break;
                };
                let env = self.apply_hop(h, env);
                if let Err(env) = self.accept(h, env) {
                    self.hops[h].pending = Some(env);
                    break;
                }
            }
        }
    }

    /// The next in-order envelope available to hop `h`: the entry slot
    /// for hop 0, the upstream farm's reorder buffer otherwise.
    fn source_next(&mut self, h: usize) -> Option<Envelope> {
        if h == 0 {
            return self.ingress.take();
        }
        let farm = &mut self.farms[h - 1];
        // drain whatever the replicas have finished into the reorder
        // buffer; release only the next item in stream order
        match &farm.links {
            FarmLinks::Rings { out_rx, .. } => {
                while let TryRecv::Item(env) = out_rx.try_recv() {
                    farm.reorder.insert(env.seq, env);
                }
            }
            FarmLinks::Locked { out_q, .. } => {
                while let TryRecv::Item(env) = out_q.try_recv() {
                    farm.reorder.insert(env.seq, env);
                }
            }
        }
        match farm.reorder.remove(&farm.expect) {
            Some(env) => {
                farm.expect += 1;
                Some(env)
            }
            None => None,
        }
    }

    /// Run hop `h`'s operator chain on one envelope. Barriers and inline
    /// segments both charge the item's own machine context; a failing
    /// barrier or panicking inline stage poisons the envelope with a
    /// typed [`RequestError`] (resolved at the collection side), and an
    /// expired deadline short-circuits the remaining operators.
    fn apply_hop(&mut self, h: usize, mut env: Envelope) -> Envelope {
        let summed = self.summed_charging;
        let hop = &mut self.hops[h];
        for (op, stat) in &mut hop.ops {
            if env.payload.is_err() {
                break; // poisoned: carry the error through untouched
            }
            if env.deadline.is_some_and(|d| Instant::now() >= d) {
                env.payload = Err(RequestError::DeadlineExceeded);
                break;
            }
            let Ok(val) = std::mem::replace(&mut env.payload, Err(RequestError::DeadlineExceeded))
            else {
                unreachable!("checked non-err above")
            };
            let t0 = Instant::now();
            env.payload = match op {
                PumpOp::Barrier(b) => {
                    match std::panic::catch_unwind(AssertUnwindSafe(|| b.apply(&mut env.scl, val)))
                    {
                        Ok(Ok(v)) => Ok(v),
                        Ok(Err(e)) => Err(RequestError::BarrierFailed {
                            stage: b.label().to_string(),
                            error: e,
                        }),
                        Err(p) => Err(RequestError::BarrierPanic {
                            stage: b.label().to_string(),
                            message: panic_message(&*p).to_string(),
                        }),
                    }
                }
                PumpOp::Inline(seg) => {
                    if summed {
                        seg.try_apply_summed(&mut env.scl, val)
                    } else {
                        seg.try_apply(&mut env.scl, val)
                    }
                }
                PumpOp::Branch(b) => {
                    // compute stages inside the arms already resolve their
                    // own panics to typed errors; the catch here is the
                    // net for split/decide/join closures
                    match std::panic::catch_unwind(AssertUnwindSafe(|| {
                        b.try_apply(&mut env.scl, val, summed)
                    })) {
                        Ok(res) => res,
                        Err(p) => Err(RequestError::BarrierPanic {
                            stage: b.label().to_string(),
                            message: panic_message(&*p).to_string(),
                        }),
                    }
                }
            };
            stat.items += 1;
            stat.busy_nanos += t0.elapsed().as_nanos() as u64;
        }
        env
    }

    /// Hand an envelope to hop `h`'s target: farm `h`'s queue, or the
    /// completion list after the last hop. `Err` hands it back when the
    /// queue is full.
    #[allow(clippy::result_large_err)] // Err hands the envelope back, by design
    fn accept(&mut self, h: usize, env: Envelope) -> Result<(), Envelope> {
        if h < self.farms.len() {
            let farm = &self.farms[h];
            match &farm.links {
                // ring farms enforce the width gate here, in the pump's
                // routing: only the first `width` replicas' lanes are
                // eligible, so narrowed-off replicas drain dry and park
                FarmLinks::Rings { in_tx, out_rx } => {
                    // Occupancy window: a shared locked queue hands items
                    // to replicas in FIFO order, so nothing falls far
                    // behind; private lanes can park an item deep in one
                    // busy lane while the others race ahead into the
                    // reorder buffer — and on through it, admitting ever
                    // more pushes. Capping admitted-minus-released at the
                    // farm's static buffer space (in + out + one in hand
                    // per replica) keeps the reorder buffer — and the
                    // whole stream's in-flight gauge — bounded by
                    // O(capacity), exactly as with locked links.
                    let window = (in_tx.capacity() + out_rx.capacity() + farm.spawned) as u64;
                    if env.seq - farm.expect >= window {
                        return Err(env);
                    }
                    in_tx.try_send_within(env, farm.active.width())
                }
                FarmLinks::Locked { in_q, .. } => in_q.try_send(env),
            }
        } else {
            self.completed.push_back(env);
            Ok(())
        }
    }

    /// One autonomic tick: sample every farm's queue depth and service
    /// utilisation since the last tick; widen a backlogged stage (depth ≥
    /// ¾ capacity) by one replica up to its ceiling, narrow a starved one
    /// (empty queue, active replicas under 25 % busy) down to one. Width
    /// changes only flip the atomic gate — no threads spawn or join.
    pub(crate) fn tick_controller(&mut self) {
        let now = Instant::now();
        for farm in &mut self.farms {
            let dt = now.duration_since(farm.last_tick).as_nanos() as u64;
            if dt == 0 {
                continue;
            }
            let busy = farm.stats.busy_nanos.load(Ordering::Relaxed);
            let dbusy = busy.saturating_sub(farm.last_busy);
            farm.last_busy = busy;
            farm.last_tick = now;
            let active = farm.active.width();
            let cap = farm.max_width.load(Ordering::Relaxed);
            let depth = farm.in_depth();
            let util = dbusy as f64 / (dt as f64 * active.max(1) as f64);
            if depth * 4 >= farm.in_routable_capacity() * 3 && active < cap {
                farm.active.set(active + 1);
            } else if depth == 0 && util < 0.25 && active > 1 {
                farm.active.set(active - 1);
            }
        }
    }

    /// Snapshot every stage in pipeline order (hop operators interleaved
    /// with farms).
    pub(crate) fn stage_stats(&self) -> Vec<StageStat> {
        let mut out = Vec::new();
        for (h, hop) in self.hops.iter().enumerate() {
            for (op, stat) in &hop.ops {
                out.push(StageStat {
                    label: op.label(),
                    farm: false,
                    width: 1,
                    max_width: 1,
                    queue_depth: 0,
                    items: stat.items,
                    mean_service_secs: mean_secs(stat.busy_nanos, stat.items),
                });
            }
            if let Some(farm) = self.farms.get(h) {
                let items = farm.stats.items.load(Ordering::Relaxed);
                out.push(StageStat {
                    label: farm.label.clone(),
                    farm: true,
                    width: farm.active.width(),
                    max_width: farm.max_width.load(Ordering::Relaxed),
                    queue_depth: farm.in_depth(),
                    items,
                    mean_service_secs: mean_secs(
                        farm.stats.busy_nanos.load(Ordering::Relaxed),
                        items,
                    ),
                });
            }
        }
        out
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        // Close every link before the pool field drops: replicas blocked
        // on a full output or an empty input wake, observe the close,
        // and exit, letting the pool's drop join them. In-flight
        // envelopes are dropped with the queues.
        for farm in &self.farms {
            match &farm.links {
                FarmLinks::Rings { in_tx, out_rx } => {
                    // closing the pump's row/column closes every lane of
                    // both matrices (1×W and W×1) and wakes parked ends
                    in_tx.close();
                    out_rx.close();
                }
                FarmLinks::Locked { in_q, out_q } => {
                    in_q.close();
                    out_q.close();
                }
            }
            // wake parked (gated-off) replicas so they observe the close
            farm.active.open_all();
        }
    }
}

/// Static payload estimate of one stream item, for calibration.
fn item_bytes(val: Option<&ErasedArr>) -> usize {
    val.map_or(0, |v| v.parts() * v.elem_bytes())
}

fn mean_secs(busy_nanos: u64, items: u64) -> f64 {
    if items == 0 {
        0.0
    } else {
        busy_nanos as f64 / items as f64 / 1e9
    }
}
