#![warn(missing_docs)]
//! # scl-stream — a streaming skeleton runtime
//!
//! Everything else in the workspace executes **one input through one plan
//! and returns**: [`Skel::run`] eagerly, `Scl::run_fused`
//! partition-resident. But the paper's pipeline and farm skeletons are
//! fundamentally *stream* operators — FastFlow-style runtimes deploy them
//! as persistent graphs of stages over bounded queues, and behavioural
//! skeletons add autonomic adaptation of the parallelism degree. This
//! crate brings both to the reproduction: it **compiles a `Skel<A, B>`
//! plan into a persistent operator graph** and serves an unbounded stream
//! of inputs through it.
//!
//! ## The operator graph
//!
//! [`Skel::into_stream_ops`] decomposes a fusable plan into maximal fused
//! compute segments separated by barriers, and [`StreamExec::new`] turns
//! that list into a graph:
//!
//! * each **segment** becomes a long-lived **farm stage**: an input queue,
//!   `N` replica workers on a persistent `scl-exec` pool
//!   ([`spawn_stage_workers`](scl_exec::spawn_stage_workers)), and an
//!   output queue. Segments are pure and part-local (`Fn + Send + Sync`),
//!   so replicas process *different stream items* concurrently; a reorder
//!   buffer restores stream order on collection (emitter / N replicas /
//!   **order-preserving** collector);
//! * each **barrier** (communication skeletons, scans, repartitioning,
//!   `iter_until` loops — anything stateful or whole-configuration)
//!   becomes a **stage boundary** executed serially, in stream order, on
//!   the pumping thread;
//! * stages are linked by **bounded queues** of `capacity` items, so
//!   backpressure propagates all the way to [`StreamExec::push`] and
//!   in-flight memory stays **O(capacity × stages)** regardless of stream
//!   length. The links default to **lock-free SPSC ring matrices**
//!   ([`scl_exec::ring_mpmc`]) — each replica owns a private lane pair,
//!   FastFlow-style, and the width gate steers the pump's routing — and
//!   fall back to the mutex+condvar [`Bounded`](scl_exec::Bounded)
//!   channel when `capacity` can't give every replica a lane (or when
//!   [`StreamPolicy::with_locked_links`] forces it).
//!
//! Plans with a stage that has no fused form fall back to per-item eager
//! execution (same answers, no pipeline overlap).
//!
//! ## Per-item charging
//!
//! Every stream item carries its **own** simulated-machine context,
//! cloned from the template in [`StreamPolicy`]: segment stages charge it
//! per part per stage exactly as the eager layer would
//! ([`SegmentOp::apply`]), and barriers run the very same closures the
//! eager path runs. Collecting [`StreamExec::run_stream`] over N inputs
//! therefore equals N eager [`Skel::run`] calls bit-for-bit, with
//! identical per-item [`MachineReport`]s (under `MeasureMode::None` /
//! costed stages — wall-clock measured charges are inherently
//! non-deterministic). The differential suite `tests/stream_vs_eager.rs`
//! holds this under sequential, threaded, and cost-driven policies.
//!
//! ## Autonomic degree control
//!
//! Each farm stage carries a width gate (`active` replicas out of
//! `max_width` spawned). A lightweight controller samples every stage's
//! queue depth and service time each *tick* (every
//! [`StreamPolicy::with_tick_items`] completions) and widens a backlogged
//! stage / narrows an underutilised one, within bounds derived from the
//! [`ExecPolicy`] thread cap and — under `ExecPolicy::CostDriven` — the
//! machine's `CostModel::fused_decision`. Replicas beyond the gate idle
//! without claiming work, so adaptation never spawns or joins threads.
//!
//! ## Serving integration
//!
//! Two hooks exist for a layer above (the `scl-serve` multi-tenant
//! service) that manages *many* graphs against one host:
//!
//! * **External width control** — [`StreamExec::set_width_cap`] clamps
//!   every farm at a share of a host-wide thread budget
//!   ([`scl_exec::ThreadBudget`]). The cap composes with the
//!   policy/cost-model ceiling and with the autonomic controller (which
//!   keeps adapting *within* it); replicas beyond the cap park on their
//!   width gates, so a scheduler can re-shard capacity between tenants
//!   every round without spawning or joining threads.
//! * **Fused-style charging** — [`StreamPolicy::with_fused_charging`]
//!   makes segments charge one summed `"fused"` compute event per part
//!   ([`SegmentOp::apply_summed`]) instead of replaying eager per-stage
//!   charges, so per-item reports equal solo
//!   [`Scl::run_fused`](scl_core::Scl::run_fused) /
//!   [`Scl::run_optimized`](scl_core::Scl::run_optimized) calls — what a
//!   service needs when it compiles *optimized* plans into its cache.
//!
//! ```
//! use scl_core::prelude::*;
//! use scl_stream::{StreamExec, StreamPolicy};
//!
//! // square then rotate: one farm stage, one barrier boundary
//! let plan = Skel::map(|x: &i64| x * x).then(Skel::rotate(1));
//! let policy = StreamPolicy::new(Machine::ap1000(4)).with_exec(ExecPolicy::Threads(2));
//! let exec = StreamExec::new(plan, policy);
//!
//! let inputs = (0..100).map(|k| ParArray::from_parts(vec![k, k + 1, k + 2, k + 3]));
//! let outputs: Vec<_> = exec.run_stream(inputs).collect();
//! assert_eq!(outputs.len(), 100);
//! assert_eq!(outputs[0].to_vec(), vec![1, 4, 9, 0]); // squared, rotated by 1
//! ```
//!
//! [`Skel::run`]: scl_core::Skel::run
//! [`Skel::into_stream_ops`]: scl_core::Skel::into_stream_ops
//! [`SegmentOp::apply`]: scl_core::SegmentOp::apply
//! [`SegmentOp::apply_summed`]: scl_core::SegmentOp::apply_summed

use scl_core::{panic_message, ErasedArr, FusePort, RequestError, Scl, SclError, Skel};
use scl_exec::ExecPolicy;
use scl_machine::{Machine, MachineReport, Throughput};
use std::collections::VecDeque;
use std::sync::atomic::AtomicU64;
use std::time::{Duration, Instant};

mod graph;

use graph::Graph;

/// How a [`StreamExec`] serves a plan: the machine template each item's
/// context is cloned from, the execution policy bounding farm widths, the
/// channel capacity (backpressure bound), and the autonomic controller's
/// settings.
pub struct StreamPolicy {
    machine: Machine,
    exec: ExecPolicy,
    capacity: usize,
    tick_items: u64,
    adaptive: bool,
    fused_charging: bool,
    locked_links: bool,
}

impl StreamPolicy {
    /// Defaults: [`ExecPolicy::auto`] farm widths, capacity-8 channels,
    /// adaptive width control ticking every 32 completions, eager-style
    /// per-stage charging.
    pub fn new(machine: Machine) -> StreamPolicy {
        StreamPolicy {
            machine,
            exec: ExecPolicy::auto(),
            capacity: 8,
            tick_items: 32,
            adaptive: true,
            fused_charging: false,
            locked_links: false,
        }
    }

    /// Set the execution policy. `Sequential` (or a 1-thread cap) runs the
    /// whole graph inline on the pumping thread — zero worker threads,
    /// fully deterministic scheduling; `Threads(t)` caps every farm at `t`
    /// replicas; `CostDriven` additionally lets the machine's cost model
    /// refine each stage's ceiling from the first item's payload.
    pub fn with_exec(mut self, exec: ExecPolicy) -> StreamPolicy {
        self.exec = exec;
        self
    }

    /// Set the per-channel capacity (≥ 1): the backpressure bound. Peak
    /// in-flight items are O(capacity × stages).
    pub fn with_capacity(mut self, capacity: usize) -> StreamPolicy {
        self.capacity = capacity.max(1);
        self
    }

    /// Set how many completions pass between autonomic controller ticks.
    pub fn with_tick_items(mut self, tick_items: u64) -> StreamPolicy {
        self.tick_items = tick_items.max(1);
        self
    }

    /// Enable/disable autonomic width control. Disabled, every farm runs
    /// at its maximum width from the start.
    pub fn with_adaptive(mut self, adaptive: bool) -> StreamPolicy {
        self.adaptive = adaptive;
        self
    }

    /// Charge fused compute segments **fused-style** — one summed
    /// `"fused"` compute event per part per segment
    /// ([`SegmentOp::apply_summed`](scl_core::SegmentOp::apply_summed)) —
    /// instead of replaying the eager per-stage charges. Same work totals
    /// and makespan; choose this when per-item reports must agree with
    /// solo [`Scl::run_fused`](scl_core::Scl::run_fused) /
    /// [`Scl::run_optimized`](scl_core::Scl::run_optimized) calls rather
    /// than solo eager runs, as `scl-serve` does for its optimized
    /// submissions.
    pub fn with_fused_charging(mut self, fused_charging: bool) -> StreamPolicy {
        self.fused_charging = fused_charging;
        self
    }

    /// Force every stage-to-stage link onto the mutex+condvar
    /// [`Bounded`](scl_exec::Bounded) channel instead of the default
    /// lock-free SPSC ring matrices. Same semantics (bounded,
    /// close-then-drain, identical outputs and reports) — this exists as
    /// an escape hatch and for differential testing of the two queue
    /// families; the rings are the fast path.
    pub fn with_locked_links(mut self, locked_links: bool) -> StreamPolicy {
        self.locked_links = locked_links;
        self
    }
}

/// One stream item in flight: its position in the stream, its private
/// simulated-machine context, an optional absolute deadline, and its
/// payload — or the typed [`RequestError`] that poisoned it (resolved on
/// the caller when the item completes).
struct Envelope {
    seq: u64,
    scl: Scl,
    /// Absolute deadline: once passed, every remaining stage
    /// short-circuits the item as [`RequestError::DeadlineExceeded`]
    /// instead of occupying a replica.
    deadline: Option<Instant>,
    payload: Result<ErasedArr, RequestError>,
}

/// What one stream item resolved to: its output and per-item machine
/// report, or the typed reason it failed.
pub type StreamOutcome<B> = Result<(B, MachineReport), RequestError>;

/// Per-farm counters the replicas update and the controller samples.
#[derive(Default)]
struct FarmStats {
    busy_nanos: AtomicU64,
    items: AtomicU64,
}

/// A snapshot of one graph stage, from [`StreamExec::stage_stats`].
#[derive(Debug, Clone)]
pub struct StageStat {
    /// Stage label: segment stage names joined with `+`, or the barrier
    /// chain's names.
    pub label: String,
    /// True for a farm (segment) stage, false for a barrier boundary.
    pub farm: bool,
    /// Currently active replicas (1 for barriers and inline stages).
    pub width: usize,
    /// Replica ceiling (spawned workers).
    pub max_width: usize,
    /// Input-queue depth right now (0 for barriers).
    pub queue_depth: usize,
    /// Items this stage has processed.
    pub items: u64,
    /// Mean per-item service time observed on this stage, in seconds.
    pub mean_service_secs: f64,
}

#[allow(clippy::large_enum_variant)] // one Mode per StreamExec, not per item
enum Mode<A, B> {
    /// Unfusable plan: per-item eager execution on the pumping thread.
    Eager(Skel<'static, A, B>),
    /// The persistent operator graph.
    Graph(Graph),
}

/// A running streaming service for one plan — see the [crate docs](self).
///
/// Feed it with [`StreamExec::push`] / collect with [`StreamExec::pop`] or
/// [`StreamExec::drain`], or hand it an iterator with
/// [`StreamExec::run_stream`]. Outputs always come back in input order.
pub struct StreamExec<A: FusePort, B: FusePort> {
    mode: Mode<A, B>,
    machine: Machine,
    exec: ExecPolicy,
    tick_items: u64,
    adaptive: bool,
    next_seq: u64,
    completed: u64,
    first_item: bool,
    started: Option<Instant>,
    peak_in_flight: u64,
    last_tick: u64,
    /// Completed items in stream order: each slot is the item's output
    /// and report, or the typed error that poisoned it. The legacy pop
    /// APIs re-raise errors as panics; the `*_outcome` APIs hand them out
    /// as values.
    done: VecDeque<StreamOutcome<B>>,
}

/// Pause between fruitless pump rounds while blocked in `push`/`pop`.
const IDLE_BACKOFF: Duration = Duration::from_micros(50);

impl<A, B> StreamExec<A, B>
where
    A: FusePort + Send + 'static,
    B: FusePort + 'static,
{
    /// Compile `plan` into a persistent operator graph served under
    /// `policy`. Unfusable plans fall back to per-item eager execution
    /// (same answers, no overlap). Farm workers spawn here and live until
    /// the `StreamExec` drops.
    pub fn new(plan: Skel<'static, A, B>, policy: StreamPolicy) -> StreamExec<A, B> {
        let StreamPolicy {
            machine,
            exec,
            capacity,
            tick_items,
            adaptive,
            fused_charging,
            locked_links,
        } = policy;
        let mode = match plan.into_stream_ops() {
            Err(plan) => Mode::Eager(plan),
            Ok(ops) => Mode::Graph(Graph::build(
                ops,
                capacity,
                exec,
                adaptive,
                fused_charging,
                locked_links,
            )),
        };
        StreamExec {
            mode,
            machine,
            exec,
            tick_items,
            adaptive,
            next_seq: 0,
            completed: 0,
            first_item: true,
            started: None,
            peak_in_flight: 0,
            last_tick: 0,
            done: VecDeque::new(),
        }
    }

    /// Items accepted but not yet completed — the graph's memory
    /// pressure. Bounded by the channel capacities, never by the stream
    /// length.
    pub fn in_flight(&self) -> u64 {
        self.next_seq - self.completed
    }

    /// High-water mark of [`StreamExec::in_flight`] over the whole run —
    /// the gauge the backpressure tests assert on.
    pub fn peak_in_flight(&self) -> u64 {
        self.peak_in_flight
    }

    /// Completed items over elapsed host time since the first push.
    pub fn throughput(&self) -> Throughput {
        Throughput {
            items: self.completed,
            secs: self.started.map_or(0.0, |t| t.elapsed().as_secs_f64()),
        }
    }

    /// Number of farm stages in the graph (0 for eager fallback and for
    /// inline/sequential service).
    pub fn farm_stages(&self) -> usize {
        match &self.mode {
            Mode::Eager(_) => 0,
            Mode::Graph(g) => g.farms.len(),
        }
    }

    /// A snapshot of every graph stage, in pipeline order.
    pub fn stage_stats(&self) -> Vec<StageStat> {
        match &self.mode {
            Mode::Eager(_) => Vec::new(),
            Mode::Graph(g) => g.stage_stats(),
        }
    }

    /// Clamp every farm stage at `cap` active replicas (≥ 1) — the
    /// external width control a shard scheduler drives when this graph's
    /// share of a host-wide thread budget changes
    /// ([`scl_exec::ThreadBudget`]). Composes with the policy/cost-model
    /// ceiling (the effective ceiling is the minimum); widening again
    /// restores headroom without forcing replicas active. Replicas beyond
    /// the cap park on their width gates — no threads spawn or join. A
    /// no-op for eager-fallback executors (no farms to cap).
    pub fn set_width_cap(&mut self, cap: usize) {
        if let Mode::Graph(g) = &mut self.mode {
            g.set_width_cap(cap);
        }
    }

    /// The external width cap last set with [`StreamExec::set_width_cap`]
    /// (`usize::MAX` when unset or serving eagerly).
    pub fn width_cap(&self) -> usize {
        match &self.mode {
            Mode::Eager(_) => usize::MAX,
            Mode::Graph(g) => g.width_cap(),
        }
    }

    /// Feed one item into the graph, blocking (and pumping the graph)
    /// while the entry channel is full — this is where backpressure
    /// reaches the producer. Fails fast with
    /// [`SclError::MachineTooSmall`] when the item spans more parts than
    /// the machine template has processors.
    pub fn push(&mut self, item: A) -> Result<(), SclError> {
        self.push_deadline(item, None)
    }

    /// [`StreamExec::push`] with an absolute deadline attached to the
    /// item. Once the deadline passes, every stage the item has not yet
    /// reached short-circuits it as [`RequestError::DeadlineExceeded`]
    /// instead of running — the item still completes (in stream order) so
    /// the caller gets a typed failure, but it stops occupying replicas.
    /// `None` streams the item with no deadline, exactly like `push`.
    pub fn push_deadline(&mut self, item: A, deadline: Option<Instant>) -> Result<(), SclError> {
        self.started.get_or_insert_with(Instant::now);
        match &mut self.mode {
            Mode::Eager(plan) => {
                // same entry contract as the graph path: reject oversized
                // items as an Err, not a panic inside the eager layer
                if item.parts_len() > self.machine.nprocs() {
                    return Err(SclError::MachineTooSmall {
                        needed: item.parts_len(),
                        procs: self.machine.nprocs(),
                    });
                }
                self.next_seq += 1;
                if deadline.is_some_and(|d| Instant::now() >= d) {
                    self.done.push_back(Err(RequestError::DeadlineExceeded));
                } else {
                    let mut scl = Scl::new(self.machine.clone()).with_policy(self.exec);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        plan.run(&mut scl, item)
                    }))
                    .map(|out| (out, scl.machine.report()))
                    .map_err(|p| RequestError::Panicked {
                        message: panic_message(&*p).to_string(),
                    });
                    self.done.push_back(outcome);
                }
                self.completed += 1;
                self.peak_in_flight = self.peak_in_flight.max(1);
                Ok(())
            }
            Mode::Graph(_) => {
                let env = self.make_env(item, deadline)?;
                let Mode::Graph(g) = &mut self.mode else {
                    unreachable!()
                };
                if std::mem::take(&mut self.first_item) {
                    g.calibrate(&env, &self.machine);
                }
                g.offer(env);
                self.peak_in_flight = self.peak_in_flight.max(self.in_flight());
                self.service();
                // wait until the graph swallowed the item off the ingress
                // slot — that is the push-side backpressure point
                loop {
                    let Mode::Graph(g) = &mut self.mode else {
                        unreachable!()
                    };
                    if g.ingress.is_none() {
                        return Ok(());
                    }
                    std::thread::sleep(IDLE_BACKOFF);
                    self.service();
                }
            }
        }
    }

    /// Next completed item in stream order — output and report, or the
    /// typed [`RequestError`] that poisoned it — without blocking. `None`
    /// when nothing is ready. This is the non-unwinding collection API a
    /// serving layer uses: failure arrives as a value, never a panic.
    pub fn try_pop_outcome(&mut self) -> Option<StreamOutcome<B>> {
        if self.done.is_empty() {
            self.service();
        }
        self.done.pop_front()
    }

    /// Next completed item in stream order as a value, pumping the graph
    /// until one is ready. `None` only when nothing is in flight.
    pub fn pop_outcome(&mut self) -> Option<StreamOutcome<B>> {
        loop {
            if let Some(out) = self.try_pop_outcome() {
                return Some(out);
            }
            if self.in_flight() == 0 {
                return None;
            }
            std::thread::sleep(IDLE_BACKOFF);
        }
    }

    /// Complete everything in flight and return it as values, in stream
    /// order: one [`StreamOutcome`] per item, failures included.
    pub fn drain_outcomes(&mut self) -> Vec<StreamOutcome<B>> {
        let mut out = Vec::new();
        while let Some(x) = self.pop_outcome() {
            out.push(x);
        }
        out
    }

    /// Next completed output in stream order, with the item's simulated
    /// machine report, without blocking. `None` when nothing is ready.
    ///
    /// A poisoned item re-raises its panic here (not in [`StreamExec::push`],
    /// which only ever reports backpressure): the panic fires on the
    /// collecting thread when the failed item's turn in stream order
    /// comes up, rendered from its typed [`RequestError`]. A caller that
    /// catches it can keep popping — the in-flight gauge stayed
    /// consistent, so the rest of the stream drains normally. Collect
    /// with [`StreamExec::try_pop_outcome`] instead to receive the error
    /// as a value.
    pub fn try_pop_with_report(&mut self) -> Option<(B, MachineReport)> {
        match self.try_pop_outcome()? {
            Ok(out) => Some(out),
            Err(e) => panic!("{e}"),
        }
    }

    /// [`StreamExec::try_pop_with_report`] discarding the report.
    pub fn try_pop(&mut self) -> Option<B> {
        self.try_pop_with_report().map(|(b, _)| b)
    }

    /// Next completed output in stream order, pumping the graph until one
    /// is ready. `None` only when nothing is in flight.
    pub fn pop_with_report(&mut self) -> Option<(B, MachineReport)> {
        loop {
            if let Some(out) = self.try_pop_with_report() {
                return Some(out);
            }
            if self.in_flight() == 0 {
                return None;
            }
            std::thread::sleep(IDLE_BACKOFF);
        }
    }

    /// [`StreamExec::pop_with_report`] discarding the report.
    pub fn pop(&mut self) -> Option<B> {
        self.pop_with_report().map(|(b, _)| b)
    }

    /// Complete everything in flight and return it, in stream order, with
    /// per-item machine reports.
    pub fn drain_with_reports(&mut self) -> Vec<(B, MachineReport)> {
        let mut out = Vec::new();
        while let Some(x) = self.pop_with_report() {
            out.push(x);
        }
        out
    }

    /// Complete everything in flight and return it, in stream order.
    pub fn drain(&mut self) -> Vec<B> {
        self.drain_with_reports()
            .into_iter()
            .map(|(b, _)| b)
            .collect()
    }

    /// Serve a whole input stream: a pull-based adaptor that pushes from
    /// `input` as the consumer pulls, keeping the graph full (and the
    /// memory bounded) without ever buffering the stream. Outputs come
    /// back in input order.
    pub fn run_stream<I>(self, input: I) -> StreamIter<A, B, I::IntoIter>
    where
        I: IntoIterator<Item = A>,
    {
        StreamIter {
            exec: self,
            input: input.into_iter(),
            exhausted: false,
        }
    }

    // ---- internals ---------------------------------------------------------

    /// Wrap an input into an envelope with its own fresh machine context.
    /// Per-item contexts run host-sequential — the stream's parallelism
    /// comes from the graph's farm replicas and pipeline overlap, not
    /// from intra-item thread fan-out.
    fn make_env(&mut self, item: A, deadline: Option<Instant>) -> Result<Envelope, SclError> {
        if item.parts_len() > self.machine.nprocs() {
            return Err(SclError::MachineTooSmall {
                needed: item.parts_len(),
                procs: self.machine.nprocs(),
            });
        }
        let scl = Scl::new(self.machine.clone());
        let seq = self.next_seq;
        self.next_seq += 1;
        // an already-expired item never touches a stage: it enters the
        // graph pre-poisoned and flows straight through to completion
        let payload = if deadline.is_some_and(|d| Instant::now() >= d) {
            Err(RequestError::DeadlineExceeded)
        } else {
            Ok(item.erase())
        };
        Ok(Envelope {
            seq,
            scl,
            deadline,
            payload,
        })
    }

    /// One service round: pump the graph, harvest completions into
    /// `done`, run the autonomic controller when a tick has elapsed.
    ///
    /// A poisoned item is fully accounted here (so the in-flight gauge
    /// stays consistent) and its typed error takes the item's slot in the
    /// `done` queue; the legacy pop side re-raises it, the outcome APIs
    /// hand it out as a value. Keeping the re-raise out of the service
    /// round means `push` can never blow up under a producer's feet just
    /// because the ring links completed a doomed item early.
    fn service(&mut self) {
        let Mode::Graph(g) = &mut self.mode else {
            return;
        };
        g.pump();
        let mut finished = Vec::new();
        while let Some(env) = g.completed.pop_front() {
            finished.push(env);
        }
        for env in finished {
            self.completed += 1;
            let outcome = env
                .payload
                .map(|val| (B::restore(val), env.scl.machine.report()));
            self.done.push_back(outcome);
        }
        if self.adaptive && self.completed - self.last_tick >= self.tick_items {
            self.last_tick = self.completed;
            if let Mode::Graph(g) = &mut self.mode {
                g.tick_controller();
            }
        }
    }
}

/// The pull-based stream adaptor returned by [`StreamExec::run_stream`].
pub struct StreamIter<A: FusePort, B: FusePort, I> {
    exec: StreamExec<A, B>,
    input: I,
    exhausted: bool,
}

impl<A, B, I> StreamIter<A, B, I>
where
    A: FusePort + Send + 'static,
    B: FusePort + 'static,
{
    /// The underlying executor, e.g. to read gauges mid-stream.
    pub fn executor(&self) -> &StreamExec<A, B> {
        &self.exec
    }

    /// Stop streaming and recover the executor (remaining in-flight items
    /// can still be drained from it).
    pub fn into_executor(self) -> StreamExec<A, B> {
        self.exec
    }
}

impl<A, B, I> Iterator for StreamIter<A, B, I>
where
    A: FusePort + Send + 'static,
    B: FusePort + 'static,
    I: Iterator<Item = A>,
{
    type Item = B;

    fn next(&mut self) -> Option<B> {
        loop {
            if let Some(b) = self.exec.try_pop() {
                return Some(b);
            }
            if self.exhausted {
                return self.exec.pop();
            }
            match self.input.next() {
                Some(item) => self
                    .exec
                    .push(item)
                    .unwrap_or_else(|e| panic!("stream input rejected: {e}")),
                None => self.exhausted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests;
