//! Unit tests for the streaming runtime. The heavyweight differential
//! suite (stream == eager bit-for-bit with identical per-item metrics,
//! across apps and policies) lives in the workspace's
//! `tests/stream_vs_eager.rs`; these cover the graph mechanics.

use super::*;
use scl_core::prelude::*;
use scl_machine::{CostModel, Topology};

fn unit_machine(n: usize) -> Machine {
    Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
}

fn arr(k: i64) -> ParArray<i64> {
    ParArray::from_parts((k..k + 4).collect())
}

/// map → rotate → map: one farm, one barrier, one trailing farm.
fn mixed_plan() -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(|x: &i64| x * 3)
        .then(Skel::rotate(1))
        .then(Skel::map_costed(|x: &i64| (x + 1, Work::flops(1))))
}

fn eager_outputs(n: i64) -> Vec<Vec<i64>> {
    let plan = mixed_plan();
    let mut scl = Scl::new(unit_machine(4));
    (0..n)
        .map(|k| {
            scl.reset();
            plan.run(&mut scl, arr(k)).to_vec()
        })
        .collect()
}

#[test]
fn push_drain_matches_eager_in_order() {
    for exec in [
        ExecPolicy::Sequential,
        ExecPolicy::Threads(3),
        ExecPolicy::cost_driven(),
    ] {
        let mut s = StreamExec::new(
            mixed_plan(),
            StreamPolicy::new(unit_machine(4)).with_exec(exec),
        );
        for k in 0..40 {
            s.push(arr(k)).unwrap();
        }
        let out = s.drain();
        let got: Vec<Vec<i64>> = out.iter().map(|a| a.to_vec()).collect();
        assert_eq!(got, eager_outputs(40), "{exec:?}");
    }
}

#[test]
fn run_stream_iterates_in_order() {
    let s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(4)),
    );
    let got: Vec<Vec<i64>> = s
        .run_stream((0..100).map(arr))
        .map(|a| a.to_vec())
        .collect();
    assert_eq!(got, eager_outputs(100));
}

#[test]
fn per_item_reports_match_eager() {
    let mut s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(2)),
    );
    for k in 0..10 {
        s.push(arr(k)).unwrap();
    }
    let streamed = s.drain_with_reports();

    let plan = mixed_plan();
    let mut scl = Scl::new(unit_machine(4));
    for (k, (out, report)) in streamed.into_iter().enumerate() {
        scl.reset();
        let eager = plan.run(&mut scl, arr(k as i64));
        assert_eq!(out, eager, "item {k}");
        assert_eq!(report, scl.machine.report(), "item {k}");
    }
}

#[test]
fn sequential_policy_runs_inline_with_no_farms() {
    let mut s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Sequential),
    );
    assert_eq!(s.farm_stages(), 0);
    s.push(arr(0)).unwrap();
    // inline service is synchronous: the item is already done
    assert_eq!(s.in_flight(), 0);
    assert_eq!(s.drain().len(), 1);
    // the inline segments still show up in the stage stats
    let stats = s.stage_stats();
    assert!(stats.iter().any(|st| st.label == "map"), "{stats:?}");
    assert!(stats.iter().any(|st| st.label == "rotate"), "{stats:?}");
}

#[test]
fn threaded_policy_builds_farms_at_segment_boundaries() {
    let s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(4)),
    );
    // map | rotate | map_costed → two farms split by one barrier
    assert_eq!(s.farm_stages(), 2);
    let stats = s.stage_stats();
    let labels: Vec<&str> = stats.iter().map(|st| st.label.as_str()).collect();
    assert_eq!(labels, vec!["map", "rotate", "map_costed"]);
    assert!(stats[0].farm && !stats[1].farm && stats[2].farm);
    assert_eq!(stats[0].max_width, 4);
}

#[test]
fn unfusable_plans_fall_back_to_eager_mode() {
    let plan = Skel::map(|x: &i64| x + 1).then(Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| {
        scl.rotate(1, &a)
    }));
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(4)),
    );
    assert_eq!(s.farm_stages(), 0);
    assert!(s.stage_stats().is_empty());
    for k in 0..5 {
        s.push(arr(k)).unwrap();
    }
    let out = s.drain();
    assert_eq!(out[0].to_vec(), vec![2, 3, 4, 1]);
    assert_eq!(out.len(), 5);
}

#[test]
fn push_rejects_oversized_items() {
    let mut s = StreamExec::new(
        Skel::map(|x: &i64| *x),
        StreamPolicy::new(unit_machine(2)).with_exec(ExecPolicy::Threads(2)),
    );
    let err = s.push(arr(0)).unwrap_err(); // 4 parts on a 2-proc machine
    assert_eq!(
        err,
        scl_core::SclError::MachineTooSmall {
            needed: 4,
            procs: 2
        }
    );
    // the rejected item never entered the graph
    assert_eq!(s.in_flight(), 0);

    // the eager fallback honours the same entry contract (Err, not a
    // panic inside the eager skeleton layer)
    let unfusable =
        Skel::map(|x: &i64| *x).then(Skel::from_fn(|_scl: &mut Scl, a: ParArray<i64>| a));
    let mut s = StreamExec::new(unfusable, StreamPolicy::new(unit_machine(2)));
    assert_eq!(s.farm_stages(), 0);
    let err = s.push(arr(0)).unwrap_err();
    assert_eq!(
        err,
        scl_core::SclError::MachineTooSmall {
            needed: 4,
            procs: 2
        }
    );
}

#[test]
fn worker_panic_reraises_labelled_at_completion() {
    let plan = Skel::map(|x: &i64| if *x == 42 { panic!("boom") } else { *x });
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(2)),
    );
    s.push(ParArray::from_parts(vec![40i64, 41, 42, 43]))
        .unwrap();
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = s.drain();
    }))
    .unwrap_err();
    let msg = payload.downcast_ref::<String>().expect("labelled panic");
    assert!(msg.contains("fused stage `map`"), "{msg}");
    assert!(msg.contains("boom"), "{msg}");
}

#[test]
fn poisoned_item_still_lets_the_rest_of_the_stream_drain() {
    // item 2 panics in a farmed stage; the panic must surface once, with
    // the in-flight gauge kept consistent so the healthy items remain
    // collectable afterwards (a regression here hangs this test forever)
    let plan = Skel::map(|x: &i64| if *x == 2 { panic!("poison") } else { *x });
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(1)).with_exec(ExecPolicy::Threads(2)),
    );
    for k in 0..6 {
        s.push(ParArray::from_parts(vec![k])).unwrap();
    }
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = s.drain();
    }))
    .unwrap_err();
    let msg = payload.downcast_ref::<String>().expect("labelled panic");
    assert!(msg.contains("poison"), "{msg}");
    // every item (including the poisoned one) is accounted; what the
    // unwound drain dropped is gone, but nothing hangs
    let _rest = s.drain();
    assert_eq!(s.in_flight(), 0);
}

#[test]
fn barrier_panic_poisons_the_item_with_its_label() {
    let plan = Skel::map(|x: &i64| x + 1).then(Skel::barrier(
        "trap",
        |_scl: &mut Scl, a: ParArray<i64>| {
            if *a.part(0) == 3 {
                panic!("barrier blew up");
            }
            a
        },
    ));
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(2)),
    );
    for k in 0..6 {
        s.push(arr(k)).unwrap(); // k=2 maps to 3 at the barrier
    }
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = s.drain();
    }))
    .unwrap_err();
    let msg = payload.downcast_ref::<String>().expect("labelled panic");
    assert!(msg.contains("stream barrier `trap` panicked"), "{msg}");
    assert!(msg.contains("barrier blew up"), "{msg}");
    // the stream survives the barrier panic too
    let _rest = s.drain();
    assert_eq!(s.in_flight(), 0);
}

#[test]
fn backpressure_bounds_in_flight_items() {
    let capacity = 4;
    let width = 2;
    let plan = Skel::map(|x: &i64| x + 1)
        .then(Skel::rotate(1))
        .then(Skel::map(|x: &i64| x * 2))
        .then(Skel::rotate(-1))
        .then(Skel::map(|x: &i64| x - 3));
    let s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(width))
            .with_capacity(capacity),
    );
    let n_farms = s.farm_stages();
    assert_eq!(n_farms, 3);
    let mut iter = s.run_stream((0..2000).map(arr));
    let mut count = 0usize;
    let mut peak = 0u64;
    while iter.next().is_some() {
        count += 1;
        peak = peak.max(iter.executor().peak_in_flight());
    }
    assert_eq!(count, 2000);
    // per farm: in-queue + replicas + out-queue + reorder (≤ width +
    // capacity) + the hop's park slot; plus the entry slot. All bounds are
    // O(capacity × stages) — nothing scales with the 2000-item stream.
    let per_farm = (3 * capacity + 2 * width + 1) as u64;
    let bound = per_farm * n_farms as u64 + 2;
    assert!(
        peak <= bound,
        "peak in-flight {peak} exceeded the capacity bound {bound}"
    );
    assert!(peak >= 2, "pipeline never overlapped items");
}

#[test]
fn ring_links_match_locked_links_bit_for_bit() {
    // the lock-free fast path is a pure transport swap: outputs AND
    // per-item machine reports must be identical to the mutex+condvar
    // fallback, item for item
    let run = |locked: bool| -> Vec<(Vec<i64>, scl_machine::MachineReport)> {
        let mut s = StreamExec::new(
            mixed_plan(),
            StreamPolicy::new(unit_machine(4))
                .with_exec(ExecPolicy::Threads(3))
                .with_locked_links(locked),
        );
        for k in 0..60 {
            s.push(arr(k)).unwrap();
        }
        s.drain_with_reports()
            .into_iter()
            .map(|(a, r)| (a.to_vec(), r))
            .collect()
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn ring_links_poison_stress_resolves_each_failure_exactly_once() {
    // companion to the 200k two-thread soak in `scl-exec::spsc`: the same
    // lock-free rings, now carrying poisoned envelopes mid-stream. Dozens
    // of stage panics scattered through a long stream over
    // `FarmLinks::Rings` must each resolve exactly once at the pop side
    // as a typed error — never a lost item, never a double report, and
    // never a stranded pump or private lane (a regression here hangs this
    // test or miscounts the outcomes).
    const N: i64 = 5_000;
    let poisoned = |k: i64| (k..k + 4).any(|x| x % 499 == 13);
    let plan = || {
        Skel::map(|x: &i64| {
            if *x % 499 == 13 {
                panic!("poison {x}");
            }
            x * 3
        })
        .then(Skel::rotate(1))
        .then(Skel::map_costed(|x: &i64| (x + 1, Work::flops(1))))
    };
    // full-width non-adaptive farms with capacity ≥ width: the ring
    // transport, per the `Farm::new` selection rule
    let mut s = StreamExec::new(
        plan(),
        StreamPolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_adaptive(false)
            .with_locked_links(false),
    );
    for k in 0..N {
        s.push(arr(k)).unwrap();
    }
    let outcomes = s.drain_outcomes();
    assert_eq!(
        outcomes.len() as i64,
        N,
        "every item accounted exactly once"
    );
    assert_eq!(s.in_flight(), 0);

    let solo = plan();
    let mut scl = Scl::new(unit_machine(4));
    let mut failures = 0usize;
    for (k, outcome) in outcomes.into_iter().enumerate() {
        let k = k as i64;
        match outcome {
            Err(e) => {
                assert!(poisoned(k), "item {k} failed but carries no poison: {e}");
                assert!(
                    matches!(&e, scl_core::RequestError::StagePanic { stage, .. } if stage == "map"),
                    "item {k}: {e}"
                );
                assert!(e.to_string().contains("poison"), "item {k}: {e}");
                failures += 1;
            }
            Ok((out, report)) => {
                assert!(!poisoned(k), "item {k} should have failed");
                scl.reset();
                let expect = solo.run(&mut scl, arr(k));
                assert_eq!(out, expect, "item {k}");
                assert_eq!(report, scl.machine.report(), "item {k} report");
            }
        }
    }
    assert!(
        failures >= 30,
        "the stream actually got poisoned: {failures}"
    );

    // the graph is still serviceable: no lane or pump was stranded
    for k in 0..20 {
        s.push(arr(N + 600 + k)).unwrap();
    }
    for (i, outcome) in s.drain_outcomes().into_iter().enumerate() {
        let k = N + 600 + i as i64;
        let (out, _) = outcome.unwrap_or_else(|e| panic!("item {k} after the storm: {e}"));
        scl.reset();
        assert_eq!(out, solo.run(&mut scl, arr(k)), "item {k} after the storm");
    }
}

#[test]
fn autonomic_controller_widens_under_load_and_narrows_when_idle() {
    // one heavy farmable stage; small tick so the controller acts often
    let plan = Skel::map(|x: &u64| {
        let mut acc = *x;
        for i in 0..60_000u64 {
            acc = acc.wrapping_mul(31).wrapping_add(i);
        }
        acc
    });
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(2))
            .with_exec(ExecPolicy::Threads(4))
            .with_capacity(4)
            .with_tick_items(8),
    );
    assert_eq!(s.stage_stats()[0].width, 1, "adaptive farms start narrow");
    for k in 0..400u64 {
        s.push(ParArray::from_parts(vec![k, k + 1])).unwrap();
        if s.stage_stats()[0].width > 1 {
            break; // widened — that's what we came to see
        }
    }
    let widened = s.stage_stats()[0].width;
    let _ = s.drain();
    assert!(
        widened > 1,
        "controller never widened a backlogged stage: {:?}",
        s.stage_stats()
    );

    // drained and idle: subsequent light traffic lets it narrow again
    for k in 0..200u64 {
        s.push(ParArray::from_parts(vec![k, k])).unwrap();
        let _ = s.drain(); // keep the queue empty ...
        std::thread::sleep(Duration::from_millis(1)); // ... and utilisation low
        if s.stage_stats()[0].width == 1 {
            break;
        }
    }
    assert_eq!(
        s.stage_stats()[0].width,
        1,
        "controller never narrowed an idle stage: {:?}",
        s.stage_stats()
    );
}

#[test]
fn cost_driven_calibration_keeps_tiny_streams_narrow() {
    // AP1000 cost model: coordination dwarfs a 4×i64 item, so the model
    // should cap every farm at one replica
    let plan = Skel::map(|x: &i64| x + 1).then(Skel::rotate(1));
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(Machine::ap1000(4)).with_exec(ExecPolicy::cost_driven()),
    );
    for k in 0..10 {
        s.push(arr(k)).unwrap();
    }
    let _ = s.drain();
    if s.farm_stages() > 0 {
        for st in s.stage_stats().iter().filter(|st| st.farm) {
            assert_eq!(st.max_width, 1, "{st:?}");
        }
    }
}

#[test]
fn vec_boundary_plans_stream_host_data() {
    // partition → balance → gather: Vec<T> in, Vec<T> out, barriers only
    let plan = Skel::partition(Pattern::Block(4))
        .then(Skel::balance())
        .then(Skel::gather());
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(Machine::ap1000(4)).with_exec(ExecPolicy::Threads(2)),
    );
    for k in 0..20i64 {
        s.push((k..k + 13).collect::<Vec<i64>>()).unwrap();
    }
    let out = s.drain();
    for (k, v) in out.into_iter().enumerate() {
        let k = k as i64;
        assert_eq!(v, (k..k + 13).collect::<Vec<i64>>());
    }
}

#[test]
fn throughput_and_gauges_track_the_run() {
    let mut s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(2)),
    );
    assert_eq!(s.throughput().items, 0);
    for k in 0..30 {
        s.push(arr(k)).unwrap();
    }
    let _ = s.drain();
    let t = s.throughput();
    assert_eq!(t.items, 30);
    assert!(t.secs > 0.0);
    assert!(t.items_per_sec() > 0.0);
    assert!(s.peak_in_flight() >= 1);
    assert_eq!(s.in_flight(), 0);
}

#[test]
fn external_width_cap_clamps_farms_and_composes_with_policy() {
    let mut s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4))
            .with_exec(ExecPolicy::Threads(4))
            .with_adaptive(false),
    );
    assert_eq!(s.width_cap(), usize::MAX);
    for st in s.stage_stats().iter().filter(|st| st.farm) {
        assert_eq!((st.width, st.max_width), (4, 4));
    }

    // a shard scheduler narrows this graph's share to 2 threads
    s.set_width_cap(2);
    assert_eq!(s.width_cap(), 2);
    for st in s.stage_stats().iter().filter(|st| st.farm) {
        assert_eq!((st.width, st.max_width), (2, 2), "{st:?}");
    }
    // the capped graph still serves correctly
    for k in 0..20 {
        s.push(arr(k)).unwrap();
    }
    let got: Vec<Vec<i64>> = s.drain().iter().map(|a| a.to_vec()).collect();
    assert_eq!(got, eager_outputs(20));

    // widening past the policy ceiling restores it, never exceeds it
    s.set_width_cap(16);
    for st in s.stage_stats().iter().filter(|st| st.farm) {
        assert_eq!(st.max_width, 4, "{st:?}");
    }
    // a zero cap clamps to one replica instead of wedging the graph
    s.set_width_cap(0);
    for st in s.stage_stats().iter().filter(|st| st.farm) {
        assert_eq!(st.max_width, 1, "{st:?}");
    }
}

#[test]
fn width_cap_respects_adaptive_control() {
    // adaptive farms start at width 1; an external cap must not force
    // replicas active, only bound the controller's headroom
    let mut s = StreamExec::new(
        mixed_plan(),
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(4)),
    );
    s.set_width_cap(3);
    for st in s.stage_stats().iter().filter(|st| st.farm) {
        assert_eq!((st.width, st.max_width), (1, 3), "{st:?}");
    }
}

#[test]
fn fused_charging_matches_run_fused_reports() {
    // two fused compute stages around a barrier: under fused charging the
    // per-item reports must equal solo `run_fused` calls (one summed
    // "fused" event per part per segment), not solo eager runs
    let plan = || {
        Skel::map_costed(|x: &i64| (x + 1, Work::flops(2)))
            .then(Skel::imap_costed(|i, x: &i64| {
                (x * 3, Work::cmps(i as u64 + 1))
            }))
            .then(Skel::rotate(1))
            .then(Skel::map_costed(|x: &i64| (x - 5, Work::moves(1))))
    };
    for exec in [ExecPolicy::Sequential, ExecPolicy::Threads(3)] {
        let mut s = StreamExec::new(
            plan(),
            StreamPolicy::new(unit_machine(4))
                .with_exec(exec)
                .with_fused_charging(true),
        );
        for k in 0..12 {
            s.push(arr(k)).unwrap();
        }
        let streamed = s.drain_with_reports();
        assert_eq!(streamed.len(), 12);

        let solo = plan();
        let mut scl = Scl::new(unit_machine(4));
        for (k, (out, report)) in streamed.into_iter().enumerate() {
            scl.reset();
            let expect = scl.run_fused(&solo, arr(k as i64)).unwrap();
            assert_eq!(out, expect, "item {k} ({exec:?})");
            assert_eq!(report, scl.machine.report(), "item {k} ({exec:?})");
        }
    }
}

#[test]
fn stateful_barriers_see_items_in_stream_order() {
    // a barrier that folds a running count into each item: only correct
    // if the pump feeds it in stream order
    let plan = Skel::map(|x: &i64| x * 10).then(Skel::barrier("count", {
        let mut count = 0i64;
        move |_scl: &mut Scl, a: ParArray<i64>| {
            count += 1;
            a.map_parts(|x| x + count)
        }
    }));
    let mut s = StreamExec::new(
        plan,
        StreamPolicy::new(unit_machine(4)).with_exec(ExecPolicy::Threads(4)),
    );
    for k in 0..50 {
        s.push(arr(k)).unwrap();
    }
    let out = s.drain();
    for (i, a) in out.iter().enumerate() {
        let k = i as i64;
        let expect: Vec<i64> = (k..k + 4).map(|x| x * 10 + k + 1).collect();
        assert_eq!(a.to_vec(), expect, "item {i}");
    }
}
