//! Seeded generator for arbitrary plan **DAGs**.
//!
//! The differential suites pin the executors against each other over
//! randomized *linear* pipelines; this module grows randomized plan
//! graphs — nesting [`Skel::pair`], [`Skel::fanout_sym`],
//! [`Skel::choice_sym`] and [`Skel::dac`] around the existing symbolic
//! stages — so the same bit-for-bit contract can be held over genuinely
//! branching structure.
//!
//! Every generated plan is:
//!
//! * **array→array over `i64`** with one scalar per virtual processor,
//!   like the rest of the lowerable fragment;
//! * **length-preserving** (every leaf stage is), which is what lets the
//!   generator nest `pair` splits: both halves of an even split stay
//!   conforming all the way to the join;
//! * **deterministic in the seed** — the same [`Rng`] stream yields the
//!   same plan, so failures reproduce exactly.
//!
//! [`DagStats`] accumulates which combinators a generation run actually
//! used and how deeply branches nested, so a suite can *assert* its
//! coverage instead of trusting the distribution.
//!
//! [`Skel::pair`]: scl_core::Skel::pair
//! [`Skel::fanout_sym`]: scl_core::Skel::fanout_sym
//! [`Skel::choice_sym`]: scl_core::Skel::choice_sym
//! [`Skel::dac`]: scl_core::Skel::dac

#![allow(clippy::explicit_auto_deref)] // clippy's suggestion breaks inference on pick()

use crate::Rng;
use scl_core::{ParArray, Skel};
use scl_transform::Registry;

/// Scalar functions registered by [`Registry::standard`], usable as map
/// bodies and choice predicates.
pub const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
/// Index functions registered by [`Registry::standard`].
pub const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
/// Associative operators registered by [`Registry::standard`], usable as
/// scan/fanout combiners.
pub const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

/// Coverage accounting for one or many generator runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DagStats {
    /// `pair` branch nodes emitted (including those inside `dac` trees).
    pub pairs: usize,
    /// `fanout` branch nodes emitted.
    pub fanouts: usize,
    /// `choice` branch nodes emitted.
    pub choices: usize,
    /// `dac` trees emitted.
    pub dacs: usize,
    /// Deepest branch-inside-branch nesting reached (1 = a single
    /// un-nested branch).
    pub deepest: usize,
}

impl DagStats {
    /// True when every combinator family appeared at least once.
    pub fn covers_all(&self) -> bool {
        self.pairs > 0 && self.fanouts > 0 && self.choices > 0 && self.dacs > 0
    }
}

/// Read a `u64` seed from environment variable `var` (decimal or
/// `0x`-prefixed hex), falling back to `default` — so CI can sweep the
/// generator through a seed matrix exactly as the chaos suite sweeps
/// `SCL_FAULT_SEED`.
pub fn env_seed(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
        .unwrap_or(default)
}

/// One random **lowerable** leaf stage (length-preserving, fusable by
/// construction).
pub fn arb_sym_stage<'r>(
    rng: &mut Rng,
    reg: &'r Registry,
) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    match rng.below(5) {
        0 => Skel::map_sym(*rng.pick(SCALARS), reg),
        1 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        2 => Skel::fetch_sym(*rng.pick(IDXFNS), reg),
        3 => Skel::send_sym(*rng.pick(IDXFNS), reg),
        _ => Skel::scan_sym(*rng.pick(ASSOC_OPS), reg),
    }
}

/// A short linear chain of leaf stages.
fn arb_chain<'r>(rng: &mut Rng, reg: &'r Registry) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    let len = rng.range_usize(1, 4);
    let mut plan = arb_sym_stage(rng, reg);
    for _ in 1..len {
        plan = plan.then(arb_sym_stage(rng, reg));
    }
    plan
}

/// The divide stage of a generated `pair`/`dac` region: an even split
/// into conforming halves. Charges nothing, and the closure is shared
/// between the eager and fused paths (it is a [`Skel::barrier`]), so both
/// executions are identical.
///
/// [`Skel::barrier`]: scl_core::Skel::barrier
pub fn split_half<'r>() -> Skel<'r, ParArray<i64>, (ParArray<i64>, ParArray<i64>)> {
    Skel::barrier("dag-split", |_scl, a: ParArray<i64>| {
        let mut parts = a.into_parts();
        debug_assert!(
            parts.len().is_multiple_of(2),
            "dag-split needs an even length"
        );
        let right = parts.split_off(parts.len() / 2);
        (ParArray::from_parts(parts), ParArray::from_parts(right))
    })
}

/// The join stage undoing [`split_half`]: concatenate the halves back
/// into one array.
pub fn join_concat<'r>() -> Skel<'r, (ParArray<i64>, ParArray<i64>), ParArray<i64>> {
    Skel::barrier(
        "dag-join",
        |_scl, (l, r): (ParArray<i64>, ParArray<i64>)| {
            let mut parts = l.into_parts();
            parts.extend(r.into_parts());
            ParArray::from_parts(parts)
        },
    )
}

/// Grow a random plan DAG over arrays of length `n`, with a nesting
/// budget of `depth` branch levels. Records what it built into `stats`.
///
/// Forms, chosen uniformly where the length admits them:
/// chains (`then`), `choice_sym`, `fanout_sym`, an explicit
/// `split · pair · join` region (even `n` only), and a `dac` tree
/// (`n` divisible by `2^levels`). At `depth == 0` only chains grow.
pub fn arb_dag<'r>(
    rng: &mut Rng,
    reg: &'r Registry,
    n: usize,
    depth: usize,
    stats: &mut DagStats,
) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    grow(rng, reg, n, depth, 0, stats)
}

fn grow<'r>(
    rng: &mut Rng,
    reg: &'r Registry,
    n: usize,
    depth: usize,
    level: usize,
    stats: &mut DagStats,
) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    if depth == 0 {
        return arb_chain(rng, reg);
    }
    let branched = |stats: &mut DagStats| {
        stats.deepest = stats.deepest.max(level + 1);
    };
    match rng.below(6) {
        // plain sequencing spends no branch budget on this spine, but
        // both sides may still branch
        0 => grow(rng, reg, n, depth - 1, level, stats).then(grow(
            rng,
            reg,
            n,
            depth - 1,
            level,
            stats,
        )),
        1 => {
            branched(stats);
            stats.choices += 1;
            let l = grow(rng, reg, n, depth - 1, level + 1, stats);
            let r = grow(rng, reg, n, depth - 1, level + 1, stats);
            Skel::choice_sym(*rng.pick(SCALARS), l, r, reg)
        }
        2 => {
            branched(stats);
            stats.fanouts += 1;
            let l = grow(rng, reg, n, depth - 1, level + 1, stats);
            let r = grow(rng, reg, n, depth - 1, level + 1, stats);
            Skel::fanout_sym(l, r, *rng.pick(ASSOC_OPS), reg)
        }
        3 if n.is_multiple_of(2) && n >= 2 => {
            branched(stats);
            stats.pairs += 1;
            let l = grow(rng, reg, n / 2, depth - 1, level + 1, stats);
            let r = grow(rng, reg, n / 2, depth - 1, level + 1, stats);
            split_half().then(l.pair(r)).then(join_concat())
        }
        4 if n.is_multiple_of(4) && n >= 4 => {
            branched(stats);
            let levels = if n.is_multiple_of(8) && rng.bool() {
                3
            } else {
                2
            };
            stats.dacs += 1;
            // every pair level of the tree is a pair branch node
            stats.pairs += (1 << levels) - 1;
            stats.deepest = stats.deepest.max(level + levels);
            let base = *rng.pick(SCALARS);
            Skel::dac(
                levels,
                |_| split_half(),
                move || Skel::map_sym(base, reg),
                |_| join_concat(),
            )
        }
        _ => {
            // a branch sandwiched between leaf stages
            branched(stats);
            stats.choices += 1;
            let l = grow(rng, reg, n, depth - 1, level + 1, stats);
            let r = grow(rng, reg, n, depth - 1, level + 1, stats);
            arb_sym_stage(rng, reg)
                .then(Skel::choice_sym(*rng.pick(SCALARS), l, r, reg))
                .then(arb_sym_stage(rng, reg))
        }
    }
}

/// A random input whose length admits every generator form: a multiple
/// of 8 in `[8, 32]`, values spanning the full useful `i64` range.
pub fn arb_dag_input(rng: &mut Rng) -> ParArray<i64> {
    let n = 8 * rng.range_usize(1, 5);
    ParArray::from_parts(rng.vec_of(n, |r| r.range_i64(-1_000_000, 1_000_000)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases;

    #[test]
    fn generator_is_deterministic_in_the_seed() {
        let reg = Registry::standard();
        let build = || {
            let mut rng = Rng::seed_from_u64(0xDA6);
            let mut stats = DagStats::default();
            let plan = arb_dag(&mut rng, &reg, 16, 3, &mut stats);
            (plan.fingerprint(), stats)
        };
        let (fp1, st1) = build();
        let (fp2, st2) = build();
        assert!(fp1.is_some(), "generated DAGs are fusable");
        assert_eq!(fp1, fp2, "same seed, same plan");
        assert_eq!(st1, st2);
    }

    #[test]
    fn generator_covers_every_combinator_across_seeds() {
        let reg = Registry::standard();
        let mut stats = DagStats::default();
        cases(64, 0xDA61, |rng| {
            let _ = arb_dag(rng, &reg, 16, 3, &mut stats);
        });
        assert!(stats.covers_all(), "coverage hole: {stats:?}");
        assert!(stats.deepest >= 3, "never nested 3 deep: {stats:?}");
    }

    #[test]
    fn env_seed_parses_decimal_and_hex() {
        assert_eq!(env_seed("SCL_DAG_SEED_UNSET_TEST", 7), 7);
        std::env::set_var("SCL_DAG_SEED_SET_TEST", "0xAB");
        assert_eq!(env_seed("SCL_DAG_SEED_SET_TEST", 7), 0xAB);
        std::env::set_var("SCL_DAG_SEED_SET_TEST", "123");
        assert_eq!(env_seed("SCL_DAG_SEED_SET_TEST", 7), 123);
        std::env::remove_var("SCL_DAG_SEED_SET_TEST");
    }
}
