#![warn(missing_docs)]
//! # scl-testkit — deterministic randomness without external crates
//!
//! The workspace's tests, benches and workload generators need seeded,
//! reproducible pseudo-randomness. The container this repo builds in has no
//! crates-io access, so instead of `rand`/`proptest` this crate provides:
//!
//! * [`Rng`] — a small, fast, seedable PRNG (xoshiro256** core seeded by
//!   SplitMix64, the standard construction) with the handful of sampling
//!   helpers the workspace actually uses;
//! * [`cases`] — a mini property-test driver: run a closure `n` times with
//!   independently seeded generators, reporting the failing case index and
//!   seed so a failure reproduces exactly.
//!
//! Determinism is part of the contract: the same seed yields the same
//! stream on every platform, so test failures and benchmark tables
//! reproduce bit-for-bit.

pub mod dag;

/// A seedable xoshiro256** pseudo-random generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 (never yields the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `u64` in `[0, bound)` (debiased by rejection).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below needs a positive bound");
        // Lemire-style rejection: retry while in the biased zone.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // 53 random mantissa bits -> uniform in [0, 1)
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    /// An unconstrained `i64` (full domain, like proptest's `any::<i64>()`).
    pub fn any_i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    /// A fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::pick of an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// A vector of `len` elements drawn by `f`.
    pub fn vec_of<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// A deterministic fault-injection plan.
///
/// Chaos suites need faults that are *reproducible*: whether a fault
/// fires must depend only on the seed and on what is being processed,
/// never on timing, thread interleaving, or how many other tenants are
/// active. Every decision here is a pure function of
/// `(seed, site, value)` — a stage applied to the same element under the
/// same seed always makes the same choice, so a co-tenant differential
/// suite can run the victim solo and chaotic side by side and demand
/// bit-for-bit equal outputs.
///
/// The four injection points mirror the ways a streamed plan can
/// misbehave:
///
/// * [`FaultPlan::maybe_panic`] in a map closure — a **stage panic**
///   (poisons one envelope in a farm worker);
/// * [`FaultPlan::maybe_panic`] in a barrier closure — a **barrier
///   panic** (poisons the item at a sequential hop);
/// * [`FaultPlan::maybe_delay`] — an **artificial delay**, a short
///   seeded sleep perturbing worker interleaving;
/// * [`FaultPlan::maybe_stall`] — a **lane stall**, a long sleep
///   modeling one wedged worker holding a lane while the rest of the
///   stream flows around it.
///
/// The seed comes from the test (or [`FaultPlan::from_env`], which reads
/// `SCL_FAULT_SEED` so CI can sweep a seed matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan making every decision from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// Seed from the `SCL_FAULT_SEED` environment variable (decimal or
    /// `0x`-prefixed hex), falling back to `default_seed` when unset or
    /// unparsable.
    pub fn from_env(default_seed: u64) -> FaultPlan {
        let seed = std::env::var("SCL_FAULT_SEED")
            .ok()
            .and_then(|s| {
                let s = s.trim();
                match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => s.parse().ok(),
                }
            })
            .unwrap_or(default_seed);
        FaultPlan::new(seed)
    }

    /// The seed every decision derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw 64-bit decision word for `(site, value)` — FNV-1a over
    /// the site name and value bytes, salted by the seed, then
    /// avalanched. Stable across platforms and runs.
    pub fn decide(&self, site: &str, value: i64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for b in site.bytes().chain(value.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // SplitMix64 finalizer: FNV alone avalanches poorly in the low bits
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// Whether the fault at `site` fires for `value`, with odds of one
    /// in `one_in` (`1` = always, `0` = never).
    pub fn fires(&self, site: &str, value: i64, one_in: u64) -> bool {
        one_in > 0 && self.decide(site, value).is_multiple_of(one_in)
    }

    /// Panic with a labelled, reproducible message when the seeded
    /// decision for `(site, value)` fires.
    pub fn maybe_panic(&self, site: &str, value: i64, one_in: u64) {
        if self.fires(site, value, one_in) {
            panic!(
                "injected fault at `{site}` on {value} (seed {:#x})",
                self.seed
            );
        }
    }

    /// Sleep a seeded duration in `[0, max_micros]` µs when the decision
    /// fires — an artificial delay that perturbs worker interleaving
    /// without changing any answer.
    pub fn maybe_delay(&self, site: &str, value: i64, one_in: u64, max_micros: u64) {
        if self.fires(site, value, one_in) && max_micros > 0 {
            let us = self.decide(site, value.wrapping_add(1)) % (max_micros + 1);
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
    }

    /// Sleep a fixed `millis` when the decision fires — a lane stall:
    /// one worker wedges while the rest of the stream flows around it.
    pub fn maybe_stall(&self, site: &str, value: i64, one_in: u64, millis: u64) {
        if self.fires(site, value, one_in) {
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
    }
}

/// A counting global allocator for allocation-budget benchmarks.
///
/// Install it in a bench binary with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: scl_testkit::alloc::CountingAlloc = scl_testkit::alloc::CountingAlloc;
/// ```
///
/// and read [`alloc::allocations`] / [`alloc::allocated_bytes`] before and
/// after the measured section; the deltas are the section's heap traffic.
/// Counters are process-global atomics (never reset), so concurrent
/// measurement sections must be serialised by the caller.
pub mod alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper counting every allocation (and realloc)
    /// and the bytes requested.
    pub struct CountingAlloc;

    // SAFETY: delegates directly to `System`; the counters are monotonic
    // atomics with no further invariants.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Total allocations (+ reallocs) since process start.
    pub fn allocations() -> u64 {
        ALLOCS.load(Ordering::Relaxed)
    }

    /// Total bytes requested since process start.
    pub fn allocated_bytes() -> u64 {
        BYTES.load(Ordering::Relaxed)
    }
}

/// Time a closure and print a one-line `criterion`-style report.
///
/// The harness warms up once, then runs timed batches until at least
/// `MIN_DURATION` has elapsed (or `MAX_ITERS` iterations have run) and
/// reports the mean and best per-iteration time. Use from a
/// `harness = false` bench target:
///
/// ```no_run
/// scl_testkit::bench("map/64", || { /* work */ });
/// ```
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) {
    use std::time::{Duration, Instant};
    const MIN_DURATION: Duration = Duration::from_millis(200);
    const MAX_ITERS: u32 = 10_000;

    std::hint::black_box(f()); // warm-up
    let mut iters = 0u32;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    while total < MIN_DURATION && iters < MAX_ITERS {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        best = best.min(dt);
        iters += 1;
    }
    let mean = total / iters.max(1);
    println!(
        "{label:<40} mean {:>12?}  best {:>12?}  ({iters} iters)",
        mean, best
    );
}

/// Run `body` for `n` independently seeded cases. On panic, the failing
/// case's index and seed are printed before the panic propagates, so
/// `Rng::seed_from_u64(seed)` reproduces it exactly.
pub fn cases(n: usize, base_seed: u64, mut body: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let seed = base_seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(i as u64);
        let mut rng = Rng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("testkit case {i}/{n} failed (seed = {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.range_i64(-5, 17);
            assert!((-5..17).contains(&x));
            let u = r.range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_reports_and_runs_all() {
        let mut count = 0;
        cases(25, 9, |rng| {
            let _ = rng.any_i64();
            count += 1;
        });
        assert_eq!(count, 25);
    }

    #[test]
    fn pick_and_vec_of() {
        let mut r = Rng::seed_from_u64(3);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
        let v = r.vec_of(12, |rng| rng.below(4));
        assert_eq!(v.len(), 12);
        assert!(v.iter().all(|&x| x < 4));
    }

    #[test]
    fn fault_decisions_are_pure_functions_of_seed_site_and_value() {
        let a = FaultPlan::new(0xfa11);
        let b = FaultPlan::new(0xfa11);
        for v in -50..50 {
            assert_eq!(a.decide("stage", v), b.decide("stage", v));
            assert_eq!(a.fires("stage", v, 8), b.fires("stage", v, 8));
        }
        // different seeds and different sites decorrelate
        let c = FaultPlan::new(0xfa12);
        assert!((-50..50).any(|v| a.fires("stage", v, 8) != c.fires("stage", v, 8)));
        assert!((-50..50).any(|v| a.fires("stage", v, 8) != a.fires("barrier", v, 8)));
    }

    #[test]
    fn fault_rates_are_roughly_honoured() {
        let p = FaultPlan::new(99);
        let hits = (0..10_000).filter(|&v| p.fires("site", v, 10)).count();
        assert!((700..1_300).contains(&hits), "one-in-10 gave {hits}/10000");
        assert!((0..10_000).all(|v| !p.fires("site", v, 0)), "0 = never");
        assert!((0..10_000).all(|v| p.fires("site", v, 1)), "1 = always");
    }

    #[test]
    fn maybe_panic_carries_the_site_and_value() {
        let p = FaultPlan::new(7);
        let v = (0..1_000).find(|&v| p.fires("boom", v, 2)).unwrap();
        let err = std::panic::catch_unwind(|| p.maybe_panic("boom", v, 2)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("injected fault at `boom`"), "{msg}");
        assert!(msg.contains(&v.to_string()), "{msg}");
        // a value the plan spares must pass through untouched
        let spared = (0..1_000).find(|&v| !p.fires("boom", v, 2)).unwrap();
        p.maybe_panic("boom", spared, 2);
    }
}
