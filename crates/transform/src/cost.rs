//! Static cost estimation of skeleton expressions.
//!
//! The estimator prices one pass of an expression over a distributed array
//! of `n` scalar elements (one per virtual processor) on a machine described
//! by a [`CostModel`] and [`Topology`]. It uses the same collective formulas
//! as the runtime simulator ([`scl_machine::Network`]), so "the optimiser's
//! opinion" and "what the simulator charges" agree structurally.
//!
//! Every data-parallel step pays one barrier (the SPMD composition
//! semantics); this is precisely why map fusion is profitable.

use crate::ir::Expr;
use crate::registry::Registry;
use scl_machine::{CostModel, Network, Time, Topology};

/// Machine and data-size parameters for estimation.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Number of elements = virtual processors.
    pub n: usize,
    /// Payload bytes per element.
    pub elem_bytes: usize,
    /// Machine cost parameters.
    pub model: CostModel,
    /// Machine interconnect.
    pub topo: Topology,
}

impl CostParams {
    /// AP1000-flavoured defaults for `n` elements of 8 bytes.
    pub fn ap1000(n: usize) -> CostParams {
        CostParams {
            n,
            elem_bytes: 8,
            model: CostModel::ap1000(),
            topo: Topology::torus_for(n.max(1)),
        }
    }
}

/// Tracks the logical data layout while walking a composition.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Layout {
    Flat { n: usize },
    Grouped { groups: usize, per_group: usize },
    Scalar,
}

/// Estimate the cost of `e` on `params`. Errors on unknown symbols or
/// ill-typed programs.
pub fn estimate(e: &Expr, reg: &Registry, params: &CostParams) -> Result<Time, String> {
    let net = Network::new(&params.model, &params.topo);
    let (t, _) = walk(e, reg, params, &net, Layout::Flat { n: params.n })?;
    Ok(t)
}

fn barrier(params: &CostParams) -> Time {
    params.model.t_barrier
}

fn step_comm(net: &Network<'_>, params: &CostParams) -> Time {
    // One permutation phase: a typical point-to-point message plus barrier.
    net.model
        .ptp(params.elem_bytes, net.topo.mean_hops().ceil() as usize)
        + barrier(params)
}

fn walk(
    e: &Expr,
    reg: &Registry,
    params: &CostParams,
    net: &Network<'_>,
    layout: Layout,
) -> Result<(Time, Layout), String> {
    use Expr::*;
    let flat_n = |layout: Layout| -> Result<usize, String> {
        match layout {
            Layout::Flat { n } => Ok(n),
            other => Err(format!("expected flat array layout, got {other:?}")),
        }
    };
    match e {
        Id => Ok((Time::ZERO, layout)),
        Compose(es) => {
            let mut t = Time::ZERO;
            let mut lay = layout;
            for sub in es.iter().rev() {
                let (dt, next) = walk(sub, reg, params, net, lay)?;
                t += dt;
                lay = next;
            }
            Ok((t, lay))
        }
        Map(f) => {
            let _ = flat_n(layout)?;
            let w = reg.fn_work(f)?;
            Ok((w.cost(&params.model) + barrier(params), layout))
        }
        Fold(op) => {
            let n = flat_n(layout)?;
            let w = reg.op_work(op)?;
            Ok((net.reduce(n, params.elem_bytes, w), Layout::Scalar))
        }
        FoldrMap(op, g) => {
            // Sequential: gather everything to one processor, then n
            // applications of g and op there.
            let n = flat_n(layout)?;
            let per = reg.op_work(op)?.cost(&params.model) + reg.fn_work(g)?.cost(&params.model);
            let t = net.gather(n, params.elem_bytes) + per * n;
            Ok((t, Layout::Scalar))
        }
        Scan(op) => {
            let n = flat_n(layout)?;
            let w = reg.op_work(op)?;
            Ok((net.scan(n, params.elem_bytes, w), layout))
        }
        Rotate(k) => {
            let _ = flat_n(layout)?;
            if *k == 0 {
                Ok((Time::ZERO, layout))
            } else {
                Ok((step_comm(net, params), layout))
            }
        }
        Fetch(_) | Send(_) => {
            let _ = flat_n(layout)?;
            Ok((step_comm(net, params), layout))
        }
        Split(p) => {
            let n = flat_n(layout)?;
            if *p == 0 || n < *p {
                return Err(format!("cannot split {n} elements into {p} groups"));
            }
            Ok((
                Time::ZERO,
                Layout::Grouped {
                    groups: *p,
                    per_group: n / *p,
                },
            ))
        }
        MapGroups(body) => match layout {
            Layout::Grouped { groups, per_group } => {
                // groups run in parallel: cost of one group
                let (t, inner) = walk(
                    body,
                    reg,
                    params,
                    net,
                    Layout::Flat {
                        n: per_group.max(1),
                    },
                )?;
                if !matches!(inner, Layout::Flat { .. }) {
                    return Err("mapGroups body must preserve array layout".into());
                }
                Ok((t, Layout::Grouped { groups, per_group }))
            }
            other => Err(format!("mapGroups needs grouped layout, got {other:?}")),
        },
        Combine => match layout {
            Layout::Grouped { groups, per_group } => Ok((
                Time::ZERO,
                Layout::Flat {
                    n: groups * per_group,
                },
            )),
            other => Err(format!("combine needs grouped layout, got {other:?}")),
        },
        SegRotate { k, .. } => {
            let _ = flat_n(layout)?;
            if *k == 0 {
                Ok((Time::ZERO, layout))
            } else {
                Ok((step_comm(net, params), layout))
            }
        }
        SegFetch { .. } | SegSend { .. } => {
            let _ = flat_n(layout)?;
            Ok((step_comm(net, params), layout))
        }
        Choice { pred, left, right } => {
            let _ = flat_n(layout)?;
            // The predicate probes one element; whichever arm runs must
            // preserve the flat layout. Cost is the worse of the two arms
            // (a conservative bound — we cannot know the branch taken).
            let probe = reg.fn_work(pred)?.cost(&params.model);
            let (tl, ll) = walk(left, reg, params, net, layout)?;
            let (tr, lr) = walk(right, reg, params, net, layout)?;
            if !matches!(ll, Layout::Flat { .. }) || !matches!(lr, Layout::Flat { .. }) {
                return Err("choice arms must preserve array layout".into());
            }
            if ll != lr {
                return Err(format!("choice arms disagree on layout: {ll:?} vs {lr:?}"));
            }
            Ok((probe + if tl >= tr { tl } else { tr }, ll))
        }
        Fanout {
            left,
            right,
            combine,
        } => {
            let n = flat_n(layout)?;
            // Both arms run over copies of the input, then a zip with the
            // combining operator. Arms are independent but share the same
            // processors, so we charge them in sequence.
            let (tl, ll) = walk(left, reg, params, net, layout)?;
            let (tr, lr) = walk(right, reg, params, net, layout)?;
            if !matches!(ll, Layout::Flat { .. }) || !matches!(lr, Layout::Flat { .. }) {
                return Err("fanout arms must preserve array layout".into());
            }
            if ll != lr {
                return Err(format!("fanout arms disagree on layout: {ll:?} vs {lr:?}"));
            }
            let zip = reg.op_work(combine)?.cost(&params.model) + barrier(params);
            let _ = n;
            Ok((tl + tr + zip, ll))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FnRef, IdxRef};

    fn reg() -> Registry {
        Registry::standard()
    }

    fn params() -> CostParams {
        CostParams::ap1000(16)
    }

    #[test]
    fn id_is_free() {
        assert_eq!(estimate(&Expr::Id, &reg(), &params()).unwrap(), Time::ZERO);
    }

    #[test]
    fn fused_maps_cost_less_than_separate() {
        let separate = Expr::Compose(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
        ]);
        let fused = Expr::Map(FnRef::named("inc").then_after(FnRef::named("double")));
        let cs = estimate(&separate, &reg(), &params()).unwrap();
        let cf = estimate(&fused, &reg(), &params()).unwrap();
        // exactly one barrier saved
        let saved = cs - cf;
        assert!((saved.as_secs() - params().model.t_barrier.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn fused_comm_costs_less() {
        let two = Expr::Compose(vec![
            Expr::Fetch(IdxRef::named("succ")),
            Expr::Fetch(IdxRef::named("succ")),
        ]);
        let one = Expr::Fetch(IdxRef::named("succ").then_after(IdxRef::named("succ")));
        assert!(
            estimate(&one, &reg(), &params()).unwrap() < estimate(&two, &reg(), &params()).unwrap()
        );
    }

    #[test]
    fn foldr_is_much_worse_than_fold_map() {
        let seq = Expr::FoldrMap("add".into(), FnRef::named("square"));
        let par = Expr::Compose(vec![
            Expr::Fold("add".into()),
            Expr::Map(FnRef::named("square")),
        ]);
        let cs = estimate(&seq, &reg(), &params()).unwrap();
        let cp = estimate(&par, &reg(), &params()).unwrap();
        assert!(cs > cp, "sequential {cs} should exceed parallel {cp}");
    }

    #[test]
    fn rotate_zero_free_nonzero_charged() {
        assert_eq!(
            estimate(&Expr::Rotate(0), &reg(), &params()).unwrap(),
            Time::ZERO
        );
        assert!(estimate(&Expr::Rotate(1), &reg(), &params()).unwrap() > Time::ZERO);
    }

    #[test]
    fn nested_equals_segmented_cost_shape() {
        let nested = Expr::pipeline(vec![
            Expr::Split(4),
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Combine,
        ]);
        let flat = Expr::SegRotate { groups: 4, k: 1 };
        let cn = estimate(&nested, &reg(), &params()).unwrap();
        let cf = estimate(&flat, &reg(), &params()).unwrap();
        assert_eq!(cn, cf);
    }

    #[test]
    fn errors_on_bad_programs() {
        // map after fold: ill-typed
        let bad = Expr::pipeline(vec![
            Expr::Fold("add".into()),
            Expr::Map(FnRef::named("inc")),
        ]);
        assert!(estimate(&bad, &reg(), &params()).is_err());
        // unknown function
        assert!(estimate(&Expr::Map(FnRef::named("nope")), &reg(), &params()).is_err());
        // over-splitting
        let bad = Expr::Split(64);
        assert!(estimate(&bad, &reg(), &CostParams::ap1000(4)).is_err());
    }

    #[test]
    fn scan_and_fold_scale_with_log_n() {
        let r = reg();
        let c4 = estimate(&Expr::Fold("add".into()), &r, &CostParams::ap1000(4)).unwrap();
        let c64 = estimate(&Expr::Fold("add".into()), &r, &CostParams::ap1000(64)).unwrap();
        assert!(c64 > c4);
        assert!(c64.as_secs() / c4.as_secs() < 6.0, "log growth, not linear");
    }
}
