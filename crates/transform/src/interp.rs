//! The reference interpreter.
//!
//! `eval` gives every [`Expr`] a denotational meaning over concrete data.
//! Its whole purpose is to *check the rewrite rules*: a transformation is
//! meaning-preserving iff the interpreter produces the same value before and
//! after (see the property tests). It is intentionally the dumbest possible
//! implementation — no parallelism, no cost accounting.

use crate::ir::{Expr, Shape};
use crate::registry::Registry;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A distributed array (one scalar per virtual processor).
    Arr(Vec<i64>),
    /// A single scalar.
    Scal(i64),
    /// A nested array (groups).
    Nested(Vec<Vec<i64>>),
}

impl Value {
    /// The shape of this value.
    pub fn shape(&self) -> Shape {
        match self {
            Value::Arr(_) => Shape::Arr,
            Value::Scal(_) => Shape::Scal,
            Value::Nested(gs) => Shape::Nested(gs.len()),
        }
    }

    /// Extract an array or error.
    pub fn into_arr(self) -> Result<Vec<i64>, String> {
        match self {
            Value::Arr(v) => Ok(v),
            other => Err(format!("expected array, got {:?}", other.shape())),
        }
    }
}

/// Balanced contiguous split of `v` into `p` groups (mirrors
/// `scl-core`'s block partitioning).
fn block_split(v: &[i64], p: usize) -> Vec<Vec<i64>> {
    assert!(p > 0);
    let n = v.len();
    let base = n / p;
    let extra = n % p;
    let mut out = Vec::with_capacity(p);
    let mut start = 0;
    for i in 0..p {
        let len = base + usize::from(i < extra);
        out.push(v[start..start + len].to_vec());
        start += len;
    }
    out
}

/// Evaluate `e` on `input` under `reg`.
pub fn eval(e: &Expr, reg: &Registry, input: Value) -> Result<Value, String> {
    use Expr::*;
    match e {
        Id => Ok(input),
        Compose(es) => {
            let mut v = input;
            for sub in es.iter().rev() {
                v = eval(sub, reg, v)?;
            }
            Ok(v)
        }
        Map(f) => {
            let v = input.into_arr()?;
            let mut out = Vec::with_capacity(v.len());
            for x in v {
                out.push(reg.apply_fn(f, x)?);
            }
            Ok(Value::Arr(out))
        }
        Fold(op) => {
            let v = input.into_arr()?;
            let mut it = v.into_iter();
            let first = it.next().ok_or("fold of empty array is undefined")?;
            let mut acc = first;
            for x in it {
                acc = reg.apply_op(op, acc, x)?;
            }
            Ok(Value::Scal(acc))
        }
        FoldrMap(op, g) => {
            // foldr with combining function λ(x, acc). op(g(x), acc),
            // seeded with g(last). Associativity of `op` is what lets the
            // map-distribution rule replace this with fold ∘ map.
            let v = input.into_arr()?;
            let mut it = v.into_iter().rev();
            let last = it.next().ok_or("foldr of empty array is undefined")?;
            let mut acc = reg.apply_fn(g, last)?;
            for x in it {
                acc = reg.apply_op(op, reg.apply_fn(g, x)?, acc)?;
            }
            Ok(Value::Scal(acc))
        }
        Scan(op) => {
            let v = input.into_arr()?;
            let mut out = Vec::with_capacity(v.len());
            let mut acc: Option<i64> = None;
            for x in v {
                acc = Some(match acc {
                    None => x,
                    Some(a) => reg.apply_op(op, a, x)?,
                });
                out.push(acc.unwrap());
            }
            Ok(Value::Arr(out))
        }
        Rotate(k) => {
            let v = input.into_arr()?;
            let n = v.len();
            if n == 0 {
                return Ok(Value::Arr(v));
            }
            let k = k.rem_euclid(n as i64) as usize;
            let out: Vec<i64> = (0..n).map(|i| v[(i + k) % n]).collect();
            Ok(Value::Arr(out))
        }
        Fetch(h) => {
            let v = input.into_arr()?;
            let n = v.len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(v[reg.apply_idx(h, i, n)?]);
            }
            Ok(Value::Arr(out))
        }
        Send(h) => {
            let v = input.into_arr()?;
            let n = v.len();
            let mut out = vec![0i64; n];
            for (k, x) in v.iter().enumerate() {
                let j = reg.apply_idx(h, k, n)?;
                out[j] = out[j].wrapping_add(*x);
            }
            Ok(Value::Arr(out))
        }
        Split(p) => {
            let v = input.into_arr()?;
            if v.len() < *p {
                return Err(format!("cannot split {} elements into {p} groups", v.len()));
            }
            Ok(Value::Nested(block_split(&v, *p)))
        }
        MapGroups(sub) => match input {
            Value::Nested(gs) => {
                let mut out = Vec::with_capacity(gs.len());
                for g in gs {
                    out.push(eval(sub, reg, Value::Arr(g))?.into_arr()?);
                }
                Ok(Value::Nested(out))
            }
            other => Err(format!(
                "mapGroups needs nested input, got {:?}",
                other.shape()
            )),
        },
        Combine => match input {
            Value::Nested(gs) => Ok(Value::Arr(gs.into_iter().flatten().collect())),
            other => Err(format!(
                "combine needs nested input, got {:?}",
                other.shape()
            )),
        },
        SegRotate { groups, k } => {
            let v = input.into_arr()?;
            let segs = block_split(&v, *groups);
            let mut out = Vec::with_capacity(v.len());
            for seg in segs {
                let m = seg.len();
                if m == 0 {
                    continue;
                }
                let kk = k.rem_euclid(m as i64) as usize;
                out.extend((0..m).map(|i| seg[(i + kk) % m]));
            }
            Ok(Value::Arr(out))
        }
        SegFetch { groups, f } => {
            let v = input.into_arr()?;
            let segs = block_split(&v, *groups);
            let mut out = Vec::with_capacity(v.len());
            for seg in segs {
                let m = seg.len();
                for i in 0..m {
                    out.push(seg[reg.apply_idx(f, i, m)?]);
                }
            }
            Ok(Value::Arr(out))
        }
        SegSend { groups, f } => {
            let v = input.into_arr()?;
            let segs = block_split(&v, *groups);
            let mut out = Vec::with_capacity(v.len());
            for seg in segs {
                let m = seg.len();
                let mut local = vec![0i64; m];
                for (k, x) in seg.iter().enumerate() {
                    let j = reg.apply_idx(f, k, m)?;
                    local[j] = local[j].wrapping_add(*x);
                }
                out.extend(local);
            }
            Ok(Value::Arr(out))
        }
        Choice { pred, left, right } => {
            let v = input.into_arr()?;
            // the predicate reads the first element; an empty array reads 0
            // — the same convention as the plan layer's `choice_sym`
            let probe = v.first().copied().unwrap_or(0);
            if reg.apply_fn(pred, probe)? != 0 {
                eval(left, reg, Value::Arr(v))
            } else {
                eval(right, reg, Value::Arr(v))
            }
        }
        Fanout {
            left,
            right,
            combine,
        } => {
            let v = input.into_arr()?;
            let l = eval(left, reg, Value::Arr(v.clone()))?.into_arr()?;
            let r = eval(right, reg, Value::Arr(v))?.into_arr()?;
            if l.len() != r.len() {
                return Err(format!(
                    "fanout arms disagree on length: {} vs {}",
                    l.len(),
                    r.len()
                ));
            }
            let mut out = Vec::with_capacity(l.len());
            for (x, y) in l.into_iter().zip(r) {
                out.push(reg.apply_op(combine, x, y)?);
            }
            Ok(Value::Arr(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FnRef;
    use crate::ir::IdxRef;

    fn arr(v: Vec<i64>) -> Value {
        Value::Arr(v)
    }

    fn run(e: &Expr, v: Vec<i64>) -> Value {
        eval(e, &Registry::standard(), arr(v)).unwrap()
    }

    #[test]
    fn id_and_compose() {
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
        ]);
        // inc first, then double
        assert_eq!(run(&e, vec![1, 2]), arr(vec![4, 6]));
        assert_eq!(run(&Expr::Id, vec![5]), arr(vec![5]));
    }

    #[test]
    fn fold_and_scan() {
        assert_eq!(
            run(&Expr::Fold("add".into()), vec![1, 2, 3, 4]),
            Value::Scal(10)
        );
        assert_eq!(
            run(&Expr::Scan("add".into()), vec![1, 2, 3]),
            arr(vec![1, 3, 6])
        );
        assert!(eval(
            &Expr::Fold("add".into()),
            &Registry::standard(),
            arr(vec![])
        )
        .is_err());
    }

    #[test]
    fn foldr_map_matches_fold_of_map_for_assoc() {
        let lhs = Expr::FoldrMap("add".into(), FnRef::named("square"));
        let rhs = Expr::pipeline(vec![
            Expr::Map(FnRef::named("square")),
            Expr::Fold("add".into()),
        ]);
        let data = vec![1, 2, 3, 4, 5];
        assert_eq!(run(&lhs, data.clone()), run(&rhs, data));
    }

    #[test]
    fn rotate_wraps() {
        assert_eq!(
            run(&Expr::Rotate(1), vec![10, 20, 30]),
            arr(vec![20, 30, 10])
        );
        assert_eq!(
            run(&Expr::Rotate(-1), vec![10, 20, 30]),
            arr(vec![30, 10, 20])
        );
        assert_eq!(
            run(&Expr::Rotate(3), vec![10, 20, 30]),
            arr(vec![10, 20, 30])
        );
    }

    #[test]
    fn fetch_and_send() {
        assert_eq!(
            run(&Expr::Fetch(IdxRef::named("succ")), vec![1, 2, 3]),
            arr(vec![2, 3, 1])
        );
        // send zero: everything accumulates at index 0
        assert_eq!(
            run(&Expr::Send(IdxRef::named("zero")), vec![1, 2, 3]),
            arr(vec![6, 0, 0])
        );
    }

    #[test]
    fn split_mapgroups_combine() {
        let e = Expr::pipeline(vec![
            Expr::Split(2),
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Combine,
        ]);
        assert_eq!(run(&e, vec![1, 2, 3, 4]), arr(vec![2, 1, 4, 3]));
    }

    #[test]
    fn seg_variants_match_nested_forms() {
        let data: Vec<i64> = (0..12).collect();
        let nested = Expr::pipeline(vec![
            Expr::Split(3),
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Combine,
        ]);
        let flat = Expr::SegRotate { groups: 3, k: 1 };
        assert_eq!(run(&nested, data.clone()), run(&flat, data.clone()));

        let nested_f = Expr::pipeline(vec![
            Expr::Split(3),
            Expr::MapGroups(Box::new(Expr::Fetch(IdxRef::named("rev")))),
            Expr::Combine,
        ]);
        let flat_f = Expr::SegFetch {
            groups: 3,
            f: IdxRef::named("rev"),
        };
        assert_eq!(run(&nested_f, data.clone()), run(&flat_f, data.clone()));

        let nested_s = Expr::pipeline(vec![
            Expr::Split(3),
            Expr::MapGroups(Box::new(Expr::Send(IdxRef::named("half")))),
            Expr::Combine,
        ]);
        let flat_s = Expr::SegSend {
            groups: 3,
            f: IdxRef::named("half"),
        };
        assert_eq!(run(&nested_s, data.clone()), run(&flat_s, data));
    }

    #[test]
    fn split_too_small_errors() {
        assert!(eval(&Expr::Split(5), &Registry::standard(), arr(vec![1, 2])).is_err());
    }

    #[test]
    fn type_errors_surface() {
        let bad = Expr::pipeline(vec![
            Expr::Fold("add".into()),
            Expr::Map(FnRef::named("inc")),
        ]);
        assert!(eval(&bad, &Registry::standard(), arr(vec![1, 2])).is_err());
        assert!(eval(&Expr::Combine, &Registry::standard(), arr(vec![1])).is_err());
    }
}
