//! The skeleton-expression IR.
//!
//! §4 of the paper treats skeleton programs as *functional expressions* and
//! optimises them with meaning-preserving rewrite rules. This module is the
//! executable form of that idea: an [`Expr`] is a composition of skeleton
//! applications over a distributed array, function symbols are named
//! references resolved in a [`crate::registry::Registry`], and the rewrite
//! engine in [`crate::rewrite`] manipulates `Expr` values directly.
//!
//! The value domain is deliberately small — distributed arrays of `i64`
//! scalars, one element per virtual processor — because the *laws* being
//! exercised (map fusion, communication algebra, flattening) are
//! shape-generic: if they hold here they hold for any element type.

use std::fmt;

/// A reference to a unary scalar function, possibly a composition chain.
///
/// `Comp([f, g])` denotes `f ∘ g` — **g is applied first**.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FnRef {
    /// A function registered by name.
    Named(String),
    /// Composition `fs[0] ∘ fs[1] ∘ …` (rightmost applies first).
    Comp(Vec<FnRef>),
}

impl FnRef {
    /// Shorthand for a named function.
    pub fn named(s: &str) -> FnRef {
        FnRef::Named(s.to_string())
    }

    /// Compose `self ∘ other` (other applies first), flattening chains.
    pub fn then_after(self, other: FnRef) -> FnRef {
        let mut items = Vec::new();
        match self {
            FnRef::Comp(fs) => items.extend(fs),
            f => items.push(f),
        }
        match other {
            FnRef::Comp(fs) => items.extend(fs),
            f => items.push(f),
        }
        FnRef::Comp(items)
    }

    /// All named leaves, leftmost (outermost) first.
    pub fn names(&self) -> Vec<&str> {
        match self {
            FnRef::Named(n) => vec![n.as_str()],
            FnRef::Comp(fs) => fs.iter().flat_map(FnRef::names).collect(),
        }
    }
}

/// A reference to an index-mapping function `(i, n) → usize`, possibly
/// composed. `Comp([f, g])` is `f ∘ g` (g applies first).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IdxRef {
    /// A registered index function.
    Named(String),
    /// Composition (rightmost applies first).
    Comp(Vec<IdxRef>),
}

impl IdxRef {
    /// Shorthand for a named index function.
    pub fn named(s: &str) -> IdxRef {
        IdxRef::Named(s.to_string())
    }

    /// Compose `self ∘ other` (other applies first), flattening chains.
    pub fn then_after(self, other: IdxRef) -> IdxRef {
        let mut items = Vec::new();
        match self {
            IdxRef::Comp(fs) => items.extend(fs),
            f => items.push(f),
        }
        match other {
            IdxRef::Comp(fs) => items.extend(fs),
            f => items.push(f),
        }
        IdxRef::Comp(items)
    }
}

/// A skeleton expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The identity program.
    Id,
    /// `es[0] ∘ es[1] ∘ …` — the **rightmost runs first** (function
    /// composition order, as the paper writes its laws).
    Compose(Vec<Expr>),
    /// `map f`: apply a scalar function at every index.
    Map(FnRef),
    /// `fold ⊕`: reduce the array to a scalar (⊕ must be associative).
    Fold(String),
    /// `foldr (⊕ ∘ g)`: the *sequential* right-fold whose combining
    /// function first applies `g` to the element — the left-hand side of
    /// the map-distribution law. Not parallel as written.
    FoldrMap(String, FnRef),
    /// `scan ⊕`: inclusive parallel prefix.
    Scan(String),
    /// `rotate k`: regular cyclic shift.
    Rotate(i64),
    /// `fetch h`: index `i` pulls from index `h(i)`.
    Fetch(IdxRef),
    /// `send h`: index `k` pushes to index `h(k)`; colliding values are
    /// combined with `+` (the canonical resolution of the paper's
    /// unordered many-to-one accumulation over a commutative monoid).
    Send(IdxRef),
    /// `split p`: divide into `p` contiguous groups (nested array).
    Split(usize),
    /// Apply a sub-program to every group of a nested array.
    MapGroups(Box<Expr>),
    /// Flatten a nested array.
    Combine,
    /// Segmented rotate: rotate within each of `groups` equal segments —
    /// what `combine ∘ mapGroups(rotate k) ∘ split p` flattens to.
    SegRotate {
        /// Number of segments.
        groups: usize,
        /// Rotation distance within each segment.
        k: i64,
    },
    /// Segmented fetch (group-local indices).
    SegFetch {
        /// Number of segments.
        groups: usize,
        /// Group-local index function.
        f: IdxRef,
    },
    /// Segmented send (group-local indices).
    SegSend {
        /// Number of segments.
        groups: usize,
        /// Group-local index function.
        f: IdxRef,
    },
    /// `choice(p)[l][r]`: run `left` when the registered predicate `pred`
    /// is nonzero on the array's first element (0 on an empty array),
    /// `right` otherwise — the Either-style branch of the plan layer's
    /// arrow combinators. Both arms must be array→array.
    Choice {
        /// Registered scalar predicate, applied to the first element.
        pred: FnRef,
        /// Arm taken when the predicate is nonzero.
        left: Box<Expr>,
        /// Arm taken when the predicate is zero.
        right: Box<Expr>,
    },
    /// `fanout(⊕)[l][r]`: run both arms over (copies of) the same input
    /// and zip their outputs element-wise with the registered operator
    /// `combine` — the `&&&` of the plan layer's arrow combinators. Both
    /// arms must be array→array and length-preserving (every array→array
    /// form in this IR is).
    Fanout {
        /// Arm producing the zip's left operand.
        left: Box<Expr>,
        /// Arm producing the zip's right operand.
        right: Box<Expr>,
        /// Registered binary operator zipping the arm outputs.
        combine: String,
    },
}

impl Expr {
    /// `a ∘ b` (b runs first), flattening nested compositions.
    pub fn after(self, b: Expr) -> Expr {
        let mut items = Vec::new();
        match self {
            Expr::Compose(es) => items.extend(es),
            e => items.push(e),
        }
        match b {
            Expr::Compose(es) => items.extend(es),
            e => items.push(e),
        }
        Expr::Compose(items)
    }

    /// Compose a pipeline given in *execution order* (first element runs
    /// first) — often more readable than composition order.
    pub fn pipeline(stages: Vec<Expr>) -> Expr {
        let mut es: Vec<Expr> = stages.into_iter().rev().collect();
        if es.len() == 1 {
            es.pop().unwrap()
        } else {
            Expr::Compose(es)
        }
    }

    /// Number of IR nodes (size metric for the rewriter's termination
    /// arguments and tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Compose(es) => 1 + es.iter().map(Expr::size).sum::<usize>(),
            Expr::MapGroups(e) => 1 + e.size(),
            Expr::Choice { left, right, .. } | Expr::Fanout { left, right, .. } => {
                1 + left.size() + right.size()
            }
            _ => 1,
        }
    }

    /// Count nodes matching a predicate anywhere in the tree.
    pub fn count(&self, pred: &dyn Fn(&Expr) -> bool) -> usize {
        let here = usize::from(pred(self));
        here + match self {
            Expr::Compose(es) => es.iter().map(|e| e.count(pred)).sum(),
            Expr::MapGroups(e) => e.count(pred),
            Expr::Choice { left, right, .. } | Expr::Fanout { left, right, .. } => {
                left.count(pred) + right.count(pred)
            }
            _ => 0,
        }
    }
}

/// The shape of a value an [`Expr`] consumes or produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// A distributed array of scalars.
    Arr,
    /// A single scalar (result of `fold`).
    Scal,
    /// A nested array of `groups` groups.
    Nested(usize),
}

/// Infer the output shape of `e` applied to input of shape `inp`; errors on
/// ill-typed programs (e.g. `map` after `fold`).
pub fn shape_of(e: &Expr, inp: Shape) -> Result<Shape, String> {
    use Expr::*;
    use Shape::*;
    let want_arr = |s: Shape, what: &str| -> Result<(), String> {
        if s == Arr {
            Ok(())
        } else {
            Err(format!("{what} needs an array input, got {s:?}"))
        }
    };
    match e {
        Id => Ok(inp),
        Compose(es) => {
            // rightmost first
            let mut s = inp;
            for sub in es.iter().rev() {
                s = shape_of(sub, s)?;
            }
            Ok(s)
        }
        Map(_)
        | Scan(_)
        | Rotate(_)
        | Fetch(_)
        | Send(_)
        | SegRotate { .. }
        | SegFetch { .. }
        | SegSend { .. } => {
            want_arr(inp, "array skeleton")?;
            Ok(Arr)
        }
        Fold(_) | FoldrMap(_, _) => {
            want_arr(inp, "fold")?;
            Ok(Scal)
        }
        Split(p) => {
            want_arr(inp, "split")?;
            Ok(Nested(*p))
        }
        MapGroups(sub) => match inp {
            Nested(g) => {
                let s = shape_of(sub, Arr)?;
                if s != Arr {
                    return Err(format!(
                        "mapGroups body must map arrays to arrays, got {s:?}"
                    ));
                }
                Ok(Nested(g))
            }
            other => Err(format!("mapGroups needs a nested input, got {other:?}")),
        },
        Combine => match inp {
            Nested(_) => Ok(Arr),
            other => Err(format!("combine needs a nested input, got {other:?}")),
        },
        Choice { left, right, .. } | Fanout { left, right, .. } => {
            want_arr(inp, "branch")?;
            for (name, arm) in [("left", left), ("right", right)] {
                let s = shape_of(arm, Arr)?;
                if s != Arr {
                    return Err(format!("branch {name} arm must be array→array, got {s:?}"));
                }
            }
            Ok(Arr)
        }
    }
}

impl fmt::Display for FnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FnRef::Named(n) => write!(f, "{n}"),
            FnRef::Comp(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" . "))
            }
        }
    }
}

impl fmt::Display for IdxRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxRef::Named(n) => write!(f, "{n}"),
            IdxRef::Comp(fs) => {
                let parts: Vec<String> = fs.iter().map(|x| x.to_string()).collect();
                write!(f, "({})", parts.join(" . "))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Expr::*;
        match self {
            Id => write!(f, "id"),
            Compose(es) => {
                let parts: Vec<String> = es.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", parts.join(" . "))
            }
            Map(fr) => write!(f, "map({fr})"),
            Fold(op) => write!(f, "fold({op})"),
            FoldrMap(op, g) => write!(f, "foldr({op} . {g})"),
            Scan(op) => write!(f, "scan({op})"),
            Rotate(k) => write!(f, "rotate({k})"),
            Fetch(h) => write!(f, "fetch({h})"),
            Send(h) => write!(f, "send({h})"),
            Split(p) => write!(f, "split({p})"),
            MapGroups(e) => write!(f, "mapGroups[{e}]"),
            Combine => write!(f, "combine"),
            SegRotate { groups, k } => write!(f, "segRotate(g={groups}, {k})"),
            SegFetch { groups, f: h } => write!(f, "segFetch(g={groups}, {h})"),
            SegSend { groups, f: h } => write!(f, "segSend(g={groups}, {h})"),
            Choice { pred, left, right } => write!(f, "choice({pred})[{left}][{right}]"),
            Fanout {
                left,
                right,
                combine,
            } => write!(f, "fanout({combine})[{left}][{right}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnref_composition_flattens() {
        let f = FnRef::named("f")
            .then_after(FnRef::named("g"))
            .then_after(FnRef::named("h"));
        assert_eq!(
            f,
            FnRef::Comp(vec![
                FnRef::named("f"),
                FnRef::named("g"),
                FnRef::named("h")
            ])
        );
        assert_eq!(f.names(), vec!["f", "g", "h"]);
    }

    #[test]
    fn pipeline_reverses_into_composition() {
        let p = Expr::pipeline(vec![Expr::Rotate(1), Expr::Map(FnRef::named("f"))]);
        // rotate runs first => composition [map, rotate]
        assert_eq!(
            p,
            Expr::Compose(vec![Expr::Map(FnRef::named("f")), Expr::Rotate(1)])
        );
        assert_eq!(Expr::pipeline(vec![Expr::Id]), Expr::Id);
    }

    #[test]
    fn after_flattens() {
        let e = Expr::Map(FnRef::named("f"))
            .after(Expr::Rotate(1))
            .after(Expr::Map(FnRef::named("g")));
        assert_eq!(e.size(), 4); // compose node + 3 children
    }

    #[test]
    fn shapes_check() {
        use Shape::*;
        let e = Expr::pipeline(vec![Expr::Map(FnRef::named("f")), Expr::Fold("add".into())]);
        assert_eq!(shape_of(&e, Arr), Ok(Scal));
        // fold then map is ill-typed
        let bad = Expr::pipeline(vec![Expr::Fold("add".into()), Expr::Map(FnRef::named("f"))]);
        assert!(shape_of(&bad, Arr).is_err());
    }

    #[test]
    fn nested_shapes() {
        use Shape::*;
        let e = Expr::pipeline(vec![
            Expr::Split(4),
            Expr::MapGroups(Box::new(Expr::Map(FnRef::named("f")))),
            Expr::Combine,
        ]);
        assert_eq!(shape_of(&e, Arr), Ok(Arr));
        // a fold inside mapGroups yields scalars per group: ill-typed
        let bad = Expr::MapGroups(Box::new(Expr::Fold("add".into())));
        assert!(shape_of(&bad, Nested(2)).is_err());
    }

    #[test]
    fn count_and_size() {
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("f")),
            Expr::Rotate(1),
            Expr::Map(FnRef::named("g")),
        ]);
        assert_eq!(e.count(&|x| matches!(x, Expr::Map(_))), 2);
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::pipeline(vec![Expr::Rotate(2), Expr::Map(FnRef::named("sq"))]);
        assert_eq!(e.to_string(), "map(sq) . rotate(2)");
    }
}
