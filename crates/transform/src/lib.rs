#![warn(missing_docs)]
//! # scl-transform — transformations for optimisation (paper §4)
//!
//! "One of the advantages of the functional abstraction mechanism of SCL is
//! that meaning preserving transformation techniques can be generally
//! applied to optimise the parallelism specified uniformly in terms of
//! skeletons."
//!
//! This crate is that machinery, executable:
//!
//! * [`ir`] — skeleton expressions as data ([`Expr`]), with function symbols
//!   resolved through a [`Registry`];
//! * [`rules`] — the paper's laws: **map fusion**, **map distribution**,
//!   the **communication algebra** (`send`/`fetch`/`rotate` fusion), and
//!   nested-SPMD **flattening**;
//! * [`rewrite`] — a fixpoint engine, plus greedy **cost-directed**
//!   optimisation against a machine model;
//! * [`cost`] — a static estimator sharing the simulator's collective
//!   formulas;
//! * [`interp`] — a reference interpreter used to property-test that every
//!   rewrite preserves meaning.
//!
//! ```
//! use scl_transform::prelude::*;
//!
//! // map(inc) . map(double) . rotate(2) . rotate(-2)   — wasteful
//! let program = Expr::pipeline(vec![
//!     Expr::Rotate(-2),
//!     Expr::Rotate(2),
//!     Expr::Map(FnRef::named("double")),
//!     Expr::Map(FnRef::named("inc")),
//! ]);
//! let reg = Registry::standard();
//! let (optimized, log) = optimize(program.clone(), &reg);
//!
//! // rotations cancel, maps fuse: a single map remains
//! assert_eq!(optimized.to_string(), "map((inc . double))");
//! assert!(log.len() >= 3);
//!
//! // and the meaning is preserved:
//! let input = Value::Arr((0..16).collect());
//! assert_eq!(
//!     eval(&program, &reg, input.clone()).unwrap(),
//!     eval(&optimized, &reg, input).unwrap(),
//! );
//! ```

pub mod cost;
pub mod interp;
pub mod ir;
pub mod parse;
pub mod registry;
pub mod rewrite;
pub mod rules;

pub use cost::{estimate, CostParams};
pub use interp::{eval, Value};
pub use ir::{shape_of, Expr, FnRef, IdxRef, Shape};
pub use parse::{parse, ParseError};
pub use registry::Registry;
pub use rewrite::{normalize, optimize, optimize_costed, rewrite_fixpoint, Applied, OptReport};
pub use rules::Rule;

/// Everything a transformation client usually needs.
pub mod prelude {
    pub use crate::cost::{estimate, CostParams};
    pub use crate::interp::{eval, Value};
    pub use crate::ir::{shape_of, Expr, FnRef, IdxRef, Shape};
    pub use crate::parse::parse;
    pub use crate::registry::Registry;
    pub use crate::rewrite::{normalize, optimize, optimize_costed};
    pub use crate::rules::Rule;
}
