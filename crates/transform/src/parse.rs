//! A concrete syntax for skeleton programs.
//!
//! The paper's future work is *Fortran-S* — a textual front end whose upper
//! layer is SCL. This module is the equivalent for the transformation
//! engine: a small parser accepting exactly the grammar the pretty-printer
//! ([`std::fmt::Display`] on [`Expr`]) emits, so programs can be written,
//! stored, rewritten and diffed as text:
//!
//! ```text
//! expr      := term (" . " term)*              composition, outermost first
//! term      := "id" | "combine"
//!            | "map"  "(" fnref ")"
//!            | "fold" "(" ident ")"
//!            | "foldr" "(" ident " . " fnref ")"
//!            | "scan" "(" ident ")"
//!            | "rotate" "(" int ")"
//!            | "fetch" "(" idxref ")" | "send" "(" idxref ")"
//!            | "split" "(" int ")"
//!            | "mapGroups" "[" expr "]"
//!            | "segRotate" "(" "g=" int "," int ")"
//!            | "segFetch"  "(" "g=" int "," idxref ")"
//!            | "segSend"   "(" "g=" int "," idxref ")"
//!            | "choice" "(" fnref ")" "[" expr "]" "[" expr "]"
//!            | "fanout" "(" ident ")" "[" expr "]" "[" expr "]"
//! fnref     := ident | "(" fnref (" . " fnref)* ")"
//! idxref    := ident | "(" idxref (" . " idxref)* ")"
//! ```
//!
//! `parse` is the left inverse of printing: for any normalised expression
//! `e`, `parse(&e.to_string()) == Ok(e)` (property-tested).

use crate::ir::{Expr, FnRef, IdxRef};

/// Parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it happened.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    Comma,
    Eq,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, i));
                i += 1;
            }
            '[' => {
                out.push((Tok::LBracket, i));
                i += 1;
            }
            ']' => {
                out.push((Tok::RBracket, i));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, i));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, i));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, i));
                i += 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let val: i64 = text.parse().map_err(|_| ParseError {
                    message: format!("bad integer `{text}`"),
                    at: start,
                })?;
                out.push((Tok::Int(val), start));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_string()), start));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    at: i,
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map(|(_, p)| *p).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            at: self.at(),
        })
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected {what}, found {t:?}"))
            }
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(v),
            other => {
                self.pos -= 1;
                self.err(format!("expected {what}, found {other:?}"))
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => {
                self.pos -= 1;
                self.err(format!("expected {what}, found {other:?}"))
            }
        }
    }

    /// `expr := term (. term)*`
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.term()?];
        while self.peek() == Some(&Tok::Dot) {
            self.bump();
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::Compose(terms)
        })
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let name = self.expect_ident("a skeleton name")?;
        match name.as_str() {
            "id" => Ok(Expr::Id),
            "combine" => Ok(Expr::Combine),
            "map" => {
                self.expect(Tok::LParen, "`(`")?;
                let f = self.fnref()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Map(f))
            }
            "fold" => {
                self.expect(Tok::LParen, "`(`")?;
                let op = self.expect_ident("an operator name")?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Fold(op))
            }
            "foldr" => {
                self.expect(Tok::LParen, "`(`")?;
                let op = self.expect_ident("an operator name")?;
                self.expect(Tok::Dot, "`.`")?;
                let g = self.fnref()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::FoldrMap(op, g))
            }
            "scan" => {
                self.expect(Tok::LParen, "`(`")?;
                let op = self.expect_ident("an operator name")?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Scan(op))
            }
            "rotate" => {
                self.expect(Tok::LParen, "`(`")?;
                let k = self.expect_int("a rotation distance")?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Rotate(k))
            }
            "fetch" => {
                self.expect(Tok::LParen, "`(`")?;
                let h = self.idxref()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Fetch(h))
            }
            "send" => {
                self.expect(Tok::LParen, "`(`")?;
                let h = self.idxref()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Expr::Send(h))
            }
            "split" => {
                self.expect(Tok::LParen, "`(`")?;
                let p = self.expect_int("a group count")?;
                self.expect(Tok::RParen, "`)`")?;
                if p <= 0 {
                    return self.err("split needs a positive group count");
                }
                Ok(Expr::Split(p as usize))
            }
            "mapGroups" => {
                self.expect(Tok::LBracket, "`[`")?;
                let body = self.expr()?;
                self.expect(Tok::RBracket, "`]`")?;
                Ok(Expr::MapGroups(Box::new(body)))
            }
            "segRotate" => {
                let (groups, k) = self.seg_header_int()?;
                Ok(Expr::SegRotate { groups, k })
            }
            "segFetch" => {
                let (groups, f) = self.seg_header_idx()?;
                Ok(Expr::SegFetch { groups, f })
            }
            "segSend" => {
                let (groups, f) = self.seg_header_idx()?;
                Ok(Expr::SegSend { groups, f })
            }
            "choice" => {
                self.expect(Tok::LParen, "`(`")?;
                let pred = self.fnref()?;
                self.expect(Tok::RParen, "`)`")?;
                let (left, right) = self.two_arms()?;
                Ok(Expr::Choice {
                    pred,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            "fanout" => {
                self.expect(Tok::LParen, "`(`")?;
                let combine = self.expect_ident("an operator name")?;
                self.expect(Tok::RParen, "`)`")?;
                let (left, right) = self.two_arms()?;
                Ok(Expr::Fanout {
                    left: Box::new(left),
                    right: Box::new(right),
                    combine,
                })
            }
            other => {
                self.pos -= 1;
                self.err(format!("unknown skeleton `{other}`"))
            }
        }
    }

    /// `"[" expr "]" "[" expr "]"` — the two arms of a branch form.
    fn two_arms(&mut self) -> Result<(Expr, Expr), ParseError> {
        self.expect(Tok::LBracket, "`[`")?;
        let left = self.expr()?;
        self.expect(Tok::RBracket, "`]`")?;
        self.expect(Tok::LBracket, "`[`")?;
        let right = self.expr()?;
        self.expect(Tok::RBracket, "`]`")?;
        Ok((left, right))
    }

    /// `"(" "g=" int "," int ")"`
    fn seg_header_int(&mut self) -> Result<(usize, i64), ParseError> {
        let g = self.seg_groups()?;
        let k = self.expect_int("a rotation distance")?;
        self.expect(Tok::RParen, "`)`")?;
        Ok((g, k))
    }

    /// `"(" "g=" int "," idxref ")"`
    fn seg_header_idx(&mut self) -> Result<(usize, IdxRef), ParseError> {
        let g = self.seg_groups()?;
        let f = self.idxref()?;
        self.expect(Tok::RParen, "`)`")?;
        Ok((g, f))
    }

    fn seg_groups(&mut self) -> Result<usize, ParseError> {
        self.expect(Tok::LParen, "`(`")?;
        let tag = self.expect_ident("`g`")?;
        if tag != "g" {
            return self.err("expected `g=`");
        }
        self.expect(Tok::Eq, "`=`")?;
        let g = self.expect_int("a group count")?;
        self.expect(Tok::Comma, "`,`")?;
        if g <= 0 {
            return self.err("segment count must be positive");
        }
        Ok(g as usize)
    }

    fn fnref(&mut self) -> Result<FnRef, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => Ok(FnRef::Named(self.expect_ident("a function name")?)),
            Some(Tok::LParen) => {
                self.bump();
                let mut items = vec![self.fnref()?];
                while self.peek() == Some(&Tok::Dot) {
                    self.bump();
                    items.push(self.fnref()?);
                }
                self.expect(Tok::RParen, "`)`")?;
                Ok(if items.len() == 1 {
                    items.pop().unwrap()
                } else {
                    FnRef::Comp(items)
                })
            }
            _ => self.err("expected a function reference"),
        }
    }

    fn idxref(&mut self) -> Result<IdxRef, ParseError> {
        match self.peek() {
            Some(Tok::Ident(_)) => Ok(IdxRef::Named(self.expect_ident("an index function")?)),
            Some(Tok::LParen) => {
                self.bump();
                let mut items = vec![self.idxref()?];
                while self.peek() == Some(&Tok::Dot) {
                    self.bump();
                    items.push(self.idxref()?);
                }
                self.expect(Tok::RParen, "`)`")?;
                Ok(if items.len() == 1 {
                    items.pop().unwrap()
                } else {
                    IdxRef::Comp(items)
                })
            }
            _ => self.err("expected an index-function reference"),
        }
    }
}

/// Parse a skeleton program from its textual form.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    if toks.is_empty() {
        return Err(ParseError {
            message: "empty program".into(),
            at: 0,
        });
    }
    let mut p = Parser {
        toks,
        pos: 0,
        len: src.len(),
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            message: "trailing input after program".into(),
            at: p.at(),
        });
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse("id").unwrap(), Expr::Id);
        assert_eq!(parse("combine").unwrap(), Expr::Combine);
        assert_eq!(parse("rotate(3)").unwrap(), Expr::Rotate(3));
        assert_eq!(parse("rotate(-5)").unwrap(), Expr::Rotate(-5));
        assert_eq!(parse("map(inc)").unwrap(), Expr::Map(FnRef::named("inc")));
        assert_eq!(parse("fold(add)").unwrap(), Expr::Fold("add".into()));
        assert_eq!(parse("scan(max)").unwrap(), Expr::Scan("max".into()));
        assert_eq!(parse("split(4)").unwrap(), Expr::Split(4));
        assert_eq!(
            parse("fetch(succ)").unwrap(),
            Expr::Fetch(IdxRef::named("succ"))
        );
    }

    #[test]
    fn parses_composition_in_print_order() {
        let e = parse("map(inc) . rotate(2) . fold(add)").unwrap();
        assert_eq!(
            e,
            Expr::Compose(vec![
                Expr::Map(FnRef::named("inc")),
                Expr::Rotate(2),
                Expr::Fold("add".into()),
            ])
        );
    }

    #[test]
    fn parses_composed_function_refs() {
        let e = parse("map((square . inc))").unwrap();
        assert_eq!(
            e,
            Expr::Map(FnRef::Comp(vec![
                FnRef::named("square"),
                FnRef::named("inc")
            ]))
        );
        // nested
        let e = parse("map(((a . b) . c))").unwrap();
        assert_eq!(
            e,
            Expr::Map(FnRef::Comp(vec![
                FnRef::Comp(vec![FnRef::named("a"), FnRef::named("b")]),
                FnRef::named("c"),
            ]))
        );
    }

    #[test]
    fn parses_nested_and_segmented() {
        let e = parse("combine . mapGroups[rotate(1) . map(inc)] . split(4)").unwrap();
        assert_eq!(
            e,
            Expr::Compose(vec![
                Expr::Combine,
                Expr::MapGroups(Box::new(Expr::Compose(vec![
                    Expr::Rotate(1),
                    Expr::Map(FnRef::named("inc")),
                ]))),
                Expr::Split(4),
            ])
        );
        assert_eq!(
            parse("segRotate(g=4, 1)").unwrap(),
            Expr::SegRotate { groups: 4, k: 1 }
        );
        assert_eq!(
            parse("segFetch(g=2, rev)").unwrap(),
            Expr::SegFetch {
                groups: 2,
                f: IdxRef::named("rev")
            }
        );
    }

    #[test]
    fn parses_foldr() {
        assert_eq!(
            parse("foldr(add . square)").unwrap(),
            Expr::FoldrMap("add".into(), FnRef::named("square"))
        );
        assert_eq!(
            parse("foldr(add . (square . inc))").unwrap(),
            Expr::FoldrMap(
                "add".into(),
                FnRef::Comp(vec![FnRef::named("square"), FnRef::named("inc")])
            )
        );
    }

    #[test]
    fn print_parse_roundtrip_examples() {
        for src in [
            "map(inc)",
            "map((heavy . square)) . rotate(-3) . fetch((succ . xor1))",
            "combine . mapGroups[send(half)] . split(2)",
            "fold(add) . map(square)",
            "foldr(mul . neg)",
            "segSend(g=3, half) . scan(add)",
            "choice(pos)[map(inc)][map(dec) . rotate(1)]",
            "fanout(add)[map(square)][rotate(-1)]",
            "fanout(max)[choice(pos)[id][map(neg)]][map(inc)] . map(double)",
        ] {
            let e = parse(src).unwrap();
            assert_eq!(e.to_string(), src, "printer must reproduce the source");
            assert_eq!(parse(&e.to_string()).unwrap(), e, "round trip");
        }
    }

    #[test]
    fn error_positions_are_helpful() {
        let err = parse("map(inc) ! rotate(1)").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.at, 9);

        let err = parse("maap(inc)").unwrap_err();
        assert!(err.message.contains("unknown skeleton"));

        let err = parse("").unwrap_err();
        assert!(err.message.contains("empty"));

        let err = parse("rotate(1) map(inc)").unwrap_err();
        assert!(err.message.contains("trailing"));

        let err = parse("split(0)").unwrap_err();
        assert!(err.message.contains("positive"));

        let err = parse("rotate(99999999999999999999)").unwrap_err();
        assert!(err.message.contains("bad integer"));

        let err = parse("map(").unwrap_err();
        assert!(err.message.contains("function reference"));
    }

    #[test]
    fn parsed_programs_evaluate() {
        use crate::interp::{eval, Value};
        use crate::registry::Registry;
        let e = parse("fold(add) . map(square)").unwrap();
        let out = eval(&e, &Registry::standard(), Value::Arr(vec![1, 2, 3])).unwrap();
        assert_eq!(out, Value::Scal(14));
    }
}
