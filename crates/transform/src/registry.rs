//! The function-symbol registry.
//!
//! Skeleton expressions reference sequential functions *by name* — exactly
//! as SCL programs name base-language procedures — and the registry supplies
//! their meaning (for the interpreter), their algebraic attributes (is a
//! binary operator associative? — the side condition of the
//! map-distribution law), and their cost (for the static estimator).

use scl_machine::Work;
use std::collections::HashMap;

use crate::ir::{FnRef, IdxRef};

/// A registered unary scalar function.
pub struct ScalarFn {
    /// The meaning.
    pub f: Box<dyn Fn(i64) -> i64 + Sync>,
    /// Cost of one application.
    pub work: Work,
}

/// A registered binary operator.
pub struct BinOp {
    /// The meaning.
    pub f: Box<dyn Fn(i64, i64) -> i64 + Sync>,
    /// Whether the operator is associative — the precondition the paper
    /// attaches to `fold`/`scan` and to the map-distribution law.
    pub assoc: bool,
    /// Cost of one application.
    pub work: Work,
}

/// A registered index-mapping function `(i, n) → usize`.
pub struct IdxFn {
    /// The meaning (receives the index and the array length).
    pub f: Box<dyn Fn(usize, usize) -> usize + Sync>,
}

/// Named sequential functions available to skeleton programs.
#[derive(Default)]
pub struct Registry {
    scalars: HashMap<String, ScalarFn>,
    binops: HashMap<String, BinOp>,
    idxfns: HashMap<String, IdxFn>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The standard library of test functions used throughout the crate's
    /// tests, benches and examples.
    pub fn standard() -> Registry {
        let mut r = Registry::new();
        r.scalar("inc", |x| x.wrapping_add(1), Work::flops(1));
        r.scalar("dec", |x| x.wrapping_sub(1), Work::flops(1));
        r.scalar("double", |x| x.wrapping_mul(2), Work::flops(1));
        r.scalar("square", |x| x.wrapping_mul(x), Work::flops(1));
        r.scalar("neg", |x| x.wrapping_neg(), Work::flops(1));
        r.scalar("halve", |x| x / 2, Work::flops(1));
        r.scalar(
            "heavy",
            |x| (0..32).fold(x, |a, i| a.wrapping_mul(31).wrapping_add(i)),
            Work::flops(32),
        );
        // fault-injection helpers for the chaos suites: `trap` crashes the
        // plan on the sentinel value 666 (any other input is identity),
        // `slow` burns ~2ms of wall clock per element so deadline
        // propagation is exercisable from wire-submitted source
        r.scalar(
            "trap",
            |x| {
                if x == 666 {
                    panic!("trap: hit sentinel 666");
                }
                x
            },
            Work::flops(1),
        );
        r.scalar(
            "slow",
            |x| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            },
            Work::flops(1),
        );
        r.binop("add", |a, b| a.wrapping_add(b), true, Work::flops(1));
        r.binop("mul", |a, b| a.wrapping_mul(b), true, Work::flops(1));
        r.binop("max", i64::max, true, Work::cmps(1));
        r.binop("min", i64::min, true, Work::cmps(1));
        r.binop("sub", |a, b| a.wrapping_sub(b), false, Work::flops(1));
        r.idx("id", |i, _| i);
        r.idx("succ", |i, n| (i + 1) % n.max(1));
        r.idx("pred", |i, n| (i + n.saturating_sub(1)) % n.max(1));
        r.idx("xor1", |i, n| (i ^ 1) % n.max(1));
        r.idx("half", |i, _| i / 2);
        r.idx("rev", |i, n| n.saturating_sub(1).saturating_sub(i));
        r.idx("zero", |_, _| 0);
        r
    }

    /// Register a unary scalar function.
    pub fn scalar(&mut self, name: &str, f: impl Fn(i64) -> i64 + Sync + 'static, work: Work) {
        self.scalars.insert(
            name.to_string(),
            ScalarFn {
                f: Box::new(f),
                work,
            },
        );
    }

    /// Register a binary operator.
    pub fn binop(
        &mut self,
        name: &str,
        f: impl Fn(i64, i64) -> i64 + Sync + 'static,
        assoc: bool,
        work: Work,
    ) {
        self.binops.insert(
            name.to_string(),
            BinOp {
                f: Box::new(f),
                assoc,
                work,
            },
        );
    }

    /// Register an index-mapping function.
    pub fn idx(&mut self, name: &str, f: impl Fn(usize, usize) -> usize + Sync + 'static) {
        self.idxfns
            .insert(name.to_string(), IdxFn { f: Box::new(f) });
    }

    /// Apply a (possibly composed) scalar function reference.
    pub fn apply_fn(&self, r: &FnRef, x: i64) -> Result<i64, String> {
        match r {
            FnRef::Named(n) => {
                let s = self
                    .scalars
                    .get(n)
                    .ok_or_else(|| format!("unknown scalar fn `{n}`"))?;
                Ok((s.f)(x))
            }
            FnRef::Comp(fs) => {
                // rightmost first
                let mut v = x;
                for f in fs.iter().rev() {
                    v = self.apply_fn(f, v)?;
                }
                Ok(v)
            }
        }
    }

    /// Total cost of one application of a (possibly composed) scalar
    /// function.
    pub fn fn_work(&self, r: &FnRef) -> Result<Work, String> {
        match r {
            FnRef::Named(n) => self
                .scalars
                .get(n)
                .map(|s| s.work)
                .ok_or_else(|| format!("unknown scalar fn `{n}`")),
            FnRef::Comp(fs) => {
                let mut w = Work::NONE;
                for f in fs {
                    w += self.fn_work(f)?;
                }
                Ok(w)
            }
        }
    }

    /// Apply a binary operator.
    pub fn apply_op(&self, name: &str, a: i64, b: i64) -> Result<i64, String> {
        let op = self
            .binops
            .get(name)
            .ok_or_else(|| format!("unknown binop `{name}`"))?;
        Ok((op.f)(a, b))
    }

    /// Is the named operator associative?
    pub fn is_assoc(&self, name: &str) -> bool {
        self.binops.get(name).map(|o| o.assoc).unwrap_or(false)
    }

    /// Cost of one application of the named operator.
    pub fn op_work(&self, name: &str) -> Result<Work, String> {
        self.binops
            .get(name)
            .map(|o| o.work)
            .ok_or_else(|| format!("unknown binop `{name}`"))
    }

    /// Apply a (possibly composed) index function.
    pub fn apply_idx(&self, r: &IdxRef, i: usize, n: usize) -> Result<usize, String> {
        match r {
            IdxRef::Named(name) => {
                let f = self
                    .idxfns
                    .get(name)
                    .ok_or_else(|| format!("unknown idx fn `{name}`"))?;
                let j = (f.f)(i, n);
                Ok(j % n.max(1))
            }
            IdxRef::Comp(fs) => {
                let mut v = i;
                for f in fs.iter().rev() {
                    v = self.apply_idx(f, v, n)?;
                }
                Ok(v)
            }
        }
    }

    /// Names of all registered scalar functions (sorted; used by the
    /// property-test generators).
    pub fn scalar_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.scalars.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all registered binary operators (sorted).
    pub fn binop_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.binops.keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all registered index functions (sorted).
    pub fn idx_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.idxfns.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_has_core_symbols() {
        let r = Registry::standard();
        assert!(r.scalar_names().contains(&"square".to_string()));
        assert!(r.binop_names().contains(&"add".to_string()));
        assert!(r.idx_names().contains(&"succ".to_string()));
    }

    #[test]
    fn apply_named_and_composed_scalars() {
        let r = Registry::standard();
        assert_eq!(r.apply_fn(&FnRef::named("inc"), 4).unwrap(), 5);
        // square ∘ inc: inc first
        let f = FnRef::named("square").then_after(FnRef::named("inc"));
        assert_eq!(r.apply_fn(&f, 4).unwrap(), 25);
    }

    #[test]
    fn composed_work_adds() {
        let r = Registry::standard();
        let f = FnRef::named("heavy").then_after(FnRef::named("inc"));
        assert_eq!(r.fn_work(&f).unwrap(), Work::flops(33));
    }

    #[test]
    fn unknown_symbols_error() {
        let r = Registry::standard();
        assert!(r.apply_fn(&FnRef::named("nope"), 0).is_err());
        assert!(r.apply_op("nope", 0, 0).is_err());
        assert!(r.apply_idx(&IdxRef::named("nope"), 0, 4).is_err());
        assert!(r.op_work("nope").is_err());
    }

    #[test]
    fn binop_attributes() {
        let r = Registry::standard();
        assert!(r.is_assoc("add"));
        assert!(!r.is_assoc("sub"));
        assert!(!r.is_assoc("missing"));
        assert_eq!(r.apply_op("max", 3, 9).unwrap(), 9);
    }

    #[test]
    fn idx_functions_wrap_mod_n() {
        let r = Registry::standard();
        assert_eq!(r.apply_idx(&IdxRef::named("succ"), 3, 4).unwrap(), 0);
        assert_eq!(r.apply_idx(&IdxRef::named("rev"), 0, 5).unwrap(), 4);
        // composed: succ ∘ succ
        let f = IdxRef::named("succ").then_after(IdxRef::named("succ"));
        assert_eq!(r.apply_idx(&f, 2, 4).unwrap(), 0);
    }
}
