//! The rewrite engine: normalisation, fixpoint rewriting, candidate
//! enumeration and cost-directed optimisation.

use crate::cost::{estimate, CostParams};
use crate::ir::Expr;
use crate::registry::Registry;
use crate::rules::Rule;
use scl_machine::Time;

/// A record of one applied rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// Which rule fired.
    pub rule: &'static str,
    /// Pretty-printed expression before.
    pub before: String,
    /// Pretty-printed expression after.
    pub after: String,
}

/// Put an expression in normal form:
/// * nested `Compose` flattened,
/// * `Id` removed from compositions,
/// * `Compose([])` → `Id`, `Compose([e])` → `e`,
/// * normalisation applied recursively inside `MapGroups`.
pub fn normalize(e: Expr) -> Expr {
    match e {
        Expr::Compose(es) => {
            let mut flat = Vec::with_capacity(es.len());
            for sub in es {
                match normalize(sub) {
                    Expr::Id => {}
                    Expr::Compose(inner) => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            match flat.len() {
                0 => Expr::Id,
                1 => flat.pop().unwrap(),
                _ => Expr::Compose(flat),
            }
        }
        Expr::MapGroups(b) => {
            let b = normalize(*b);
            if b == Expr::Id {
                Expr::Id
            } else {
                Expr::MapGroups(Box::new(b))
            }
        }
        Expr::Choice { pred, left, right } => Expr::Choice {
            pred,
            left: Box::new(normalize(*left)),
            right: Box::new(normalize(*right)),
        },
        Expr::Fanout {
            left,
            right,
            combine,
        } => Expr::Fanout {
            left: Box::new(normalize(*left)),
            right: Box::new(normalize(*right)),
            combine,
        },
        other => other,
    }
}

/// Try one rule application anywhere in `e` (root first, then children,
/// leftmost-first). Returns the rewritten whole expression.
fn rewrite_once(e: &Expr, rules: &[Rule], reg: &Registry, log: &mut Vec<Applied>) -> Option<Expr> {
    for rule in rules {
        if let Some(out) = rule.apply(e, reg) {
            log.push(Applied {
                rule: rule.name(),
                before: e.to_string(),
                after: normalize(out.clone()).to_string(),
            });
            return Some(out);
        }
    }
    match e {
        Expr::Compose(es) => {
            for (i, sub) in es.iter().enumerate() {
                if let Some(new_sub) = rewrite_once(sub, rules, reg, log) {
                    let mut out = es.clone();
                    out[i] = new_sub;
                    return Some(Expr::Compose(out));
                }
            }
            None
        }
        Expr::MapGroups(b) => {
            rewrite_once(b, rules, reg, log).map(|nb| Expr::MapGroups(Box::new(nb)))
        }
        Expr::Choice { pred, left, right } => {
            if let Some(nl) = rewrite_once(left, rules, reg, log) {
                return Some(Expr::Choice {
                    pred: pred.clone(),
                    left: Box::new(nl),
                    right: right.clone(),
                });
            }
            rewrite_once(right, rules, reg, log).map(|nr| Expr::Choice {
                pred: pred.clone(),
                left: left.clone(),
                right: Box::new(nr),
            })
        }
        Expr::Fanout {
            left,
            right,
            combine,
        } => {
            if let Some(nl) = rewrite_once(left, rules, reg, log) {
                return Some(Expr::Fanout {
                    left: Box::new(nl),
                    right: right.clone(),
                    combine: combine.clone(),
                });
            }
            rewrite_once(right, rules, reg, log).map(|nr| Expr::Fanout {
                left: left.clone(),
                right: Box::new(nr),
                combine: combine.clone(),
            })
        }
        _ => None,
    }
}

/// Apply `rules` to a fixpoint (with an iteration cap as a safety net —
/// the shipped rule set strictly shrinks the term, so the cap is never hit
/// in practice). Returns the normal form and the log of applications.
pub fn rewrite_fixpoint(e: Expr, rules: &[Rule], reg: &Registry) -> (Expr, Vec<Applied>) {
    const CAP: usize = 10_000;
    let mut log = Vec::new();
    let mut cur = normalize(e);
    for _ in 0..CAP {
        match rewrite_once(&cur, rules, reg, &mut log) {
            Some(next) => cur = normalize(next),
            None => return (cur, log),
        }
    }
    (cur, log)
}

/// Optimise with the full safe rule set (the paper's laws) to fixpoint.
pub fn optimize(e: Expr, reg: &Registry) -> (Expr, Vec<Applied>) {
    rewrite_fixpoint(e, &Rule::ALL, reg)
}

/// Enumerate every expression reachable from `e` by a *single* rule
/// application at any position, tagged with the rule that produced it.
pub fn single_step_candidates(e: &Expr, reg: &Registry) -> Vec<(&'static str, Expr)> {
    let mut out = Vec::new();
    for rule in &Rule::ALL {
        collect_applications(e, *rule, reg, &mut |rewritten| {
            out.push((rule.name(), normalize(rewritten)));
        });
    }
    out
}

/// Apply `rule` at every position of `e`, calling `sink` with each whole
/// rewritten expression. (`dyn` rather than `impl` — the recursion wraps
/// the sink in a new closure per level, which would otherwise monomorphise
/// forever.)
fn collect_applications(e: &Expr, rule: Rule, reg: &Registry, sink: &mut dyn FnMut(Expr)) {
    for out in rule.apply_all(e, reg) {
        sink(out);
    }
    match e {
        Expr::Compose(es) => {
            for (i, sub) in es.iter().enumerate() {
                let mut wrap = |rewritten: Expr| {
                    let mut copy = es.clone();
                    copy[i] = rewritten;
                    sink(Expr::Compose(copy));
                };
                collect_applications(sub, rule, reg, &mut wrap);
            }
        }
        Expr::MapGroups(b) => {
            let mut wrap = |rewritten: Expr| sink(Expr::MapGroups(Box::new(rewritten)));
            collect_applications(b, rule, reg, &mut wrap);
        }
        Expr::Choice { pred, left, right } => {
            let mut wrap = |rewritten: Expr| {
                sink(Expr::Choice {
                    pred: pred.clone(),
                    left: Box::new(rewritten),
                    right: right.clone(),
                })
            };
            collect_applications(left, rule, reg, &mut wrap);
            let mut wrap = |rewritten: Expr| {
                sink(Expr::Choice {
                    pred: pred.clone(),
                    left: left.clone(),
                    right: Box::new(rewritten),
                })
            };
            collect_applications(right, rule, reg, &mut wrap);
        }
        Expr::Fanout {
            left,
            right,
            combine,
        } => {
            let mut wrap = |rewritten: Expr| {
                sink(Expr::Fanout {
                    left: Box::new(rewritten),
                    right: right.clone(),
                    combine: combine.clone(),
                })
            };
            collect_applications(left, rule, reg, &mut wrap);
            let mut wrap = |rewritten: Expr| {
                sink(Expr::Fanout {
                    left: left.clone(),
                    right: Box::new(rewritten),
                    combine: combine.clone(),
                })
            };
            collect_applications(right, rule, reg, &mut wrap);
        }
        _ => {}
    }
}

/// Report from the cost-directed optimiser.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Estimated cost of the input program.
    pub initial_cost: Time,
    /// Estimated cost of the chosen program.
    pub final_cost: Time,
    /// The greedy steps taken (rule name, cost after the step).
    pub steps: Vec<(&'static str, Time)>,
}

/// Greedy cost-directed optimisation: repeatedly take the single rewrite
/// that most reduces the estimated cost on the given machine, stopping at a
/// local optimum. Because all shipped rules are semantics-preserving, any
/// stopping point is a valid program.
pub fn optimize_costed(
    e: Expr,
    reg: &Registry,
    params: &CostParams,
) -> Result<(Expr, OptReport), String> {
    let mut cur = normalize(e);
    let initial_cost = estimate(&cur, reg, params)?;
    let mut cur_cost = initial_cost;
    let mut steps = Vec::new();
    loop {
        // Strictly decreasing (cost, size) lexicographic measure: equal-cost
        // rewrites that shrink the term (e.g. rotate(0) → id) still apply,
        // and termination is guaranteed.
        let cur_key = (cur_cost, cur.size());
        let mut best: Option<(&'static str, Expr, (Time, usize))> = None;
        for (rule, cand) in single_step_candidates(&cur, reg) {
            let key = (estimate(&cand, reg, params)?, cand.size());
            let improves = key.0 < cur_key.0 || (key.0 == cur_key.0 && key.1 < cur_key.1);
            let beats_best = best
                .as_ref()
                .map(|(_, _, bk)| key.0 < bk.0 || (key.0 == bk.0 && key.1 < bk.1))
                .unwrap_or(true);
            if improves && beats_best {
                best = Some((rule, cand, key));
            }
        }
        match best {
            Some((rule, cand, key)) => {
                steps.push((rule, key.0));
                cur = cand;
                cur_cost = key.0;
            }
            None => break,
        }
    }
    Ok((
        cur,
        OptReport {
            initial_cost,
            final_cost: cur_cost,
            steps,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{FnRef, IdxRef};
    use scl_machine::{CostModel, Topology};

    fn reg() -> Registry {
        Registry::standard()
    }

    fn params() -> CostParams {
        CostParams {
            n: 16,
            elem_bytes: 8,
            model: CostModel::ap1000(),
            topo: Topology::Torus2D { rows: 4, cols: 4 },
        }
    }

    #[test]
    fn normalize_flattens_and_prunes() {
        let e = Expr::Compose(vec![
            Expr::Id,
            Expr::Compose(vec![Expr::Rotate(1), Expr::Id, Expr::Rotate(2)]),
            Expr::Id,
        ]);
        assert_eq!(
            normalize(e),
            Expr::Compose(vec![Expr::Rotate(1), Expr::Rotate(2)])
        );
        assert_eq!(normalize(Expr::Compose(vec![])), Expr::Id);
        assert_eq!(
            normalize(Expr::Compose(vec![Expr::Rotate(3)])),
            Expr::Rotate(3)
        );
        assert_eq!(normalize(Expr::MapGroups(Box::new(Expr::Id))), Expr::Id);
    }

    #[test]
    fn fixpoint_fuses_map_chain() {
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
            Expr::Map(FnRef::named("square")),
        ]);
        let (out, log) = optimize(e, &reg());
        assert!(matches!(out, Expr::Map(_)), "got {out}");
        assert_eq!(log.iter().filter(|a| a.rule == "map-fusion").count(), 2);
    }

    #[test]
    fn fixpoint_collapses_rotations() {
        let e = Expr::pipeline(vec![Expr::Rotate(3), Expr::Rotate(-3)]);
        let (out, log) = optimize(e, &reg());
        assert_eq!(out, Expr::Id);
        assert!(log.iter().any(|a| a.rule == "rotate-fusion"));
        assert!(log.iter().any(|a| a.rule == "rotate-identity"));
    }

    #[test]
    fn fixpoint_distributes_foldr() {
        let e = Expr::FoldrMap("add".into(), FnRef::named("square"));
        let (out, log) = optimize(e, &reg());
        assert_eq!(
            out,
            Expr::Compose(vec![
                Expr::Fold("add".into()),
                Expr::Map(FnRef::named("square"))
            ])
        );
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].rule, "map-distribution");
    }

    #[test]
    fn fixpoint_flattens_nested() {
        let e = Expr::pipeline(vec![
            Expr::Split(4),
            Expr::MapGroups(Box::new(Expr::pipeline(vec![
                Expr::Map(FnRef::named("inc")),
                Expr::Rotate(1),
            ]))),
            Expr::Combine,
        ]);
        let (out, log) = optimize(e, &reg());
        assert!(log.iter().any(|a| a.rule == "flatten"), "{log:?}");
        assert!(out.count(&|x| matches!(x, Expr::Split(_))) == 0);
        assert!(out.count(&|x| matches!(x, Expr::SegRotate { .. })) == 1);
    }

    #[test]
    fn rewrites_reach_inside_map_groups() {
        let e = Expr::MapGroups(Box::new(Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
            Expr::Fold("add".into()),
        ])));
        let (_, log) = optimize(e, &reg());
        assert!(log.iter().any(|a| a.rule == "map-fusion"));
    }

    #[test]
    fn candidates_enumerate_all_positions() {
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
            Expr::Map(FnRef::named("square")),
        ]);
        let cands = single_step_candidates(&e, &reg());
        // two adjacent map pairs can fuse
        let fusions: Vec<_> = cands.iter().filter(|(r, _)| *r == "map-fusion").collect();
        assert_eq!(fusions.len(), 2);
    }

    #[test]
    fn cost_directed_never_worse() {
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
            Expr::Rotate(2),
            Expr::Rotate(-2),
            Expr::Fetch(IdxRef::named("succ")),
            Expr::Fetch(IdxRef::named("succ")),
        ]);
        let (out, report) = optimize_costed(e, &reg(), &params()).unwrap();
        assert!(report.final_cost <= report.initial_cost);
        assert!(!report.steps.is_empty());
        // rotations cancel entirely; fetches fuse; maps fuse
        assert!(out.count(&|x| matches!(x, Expr::Rotate(_))) == 0, "{out}");
        assert!(out.count(&|x| matches!(x, Expr::Fetch(_))) == 1, "{out}");
        assert!(out.count(&|x| matches!(x, Expr::Map(_))) == 1, "{out}");
    }

    #[test]
    fn applied_log_is_readable() {
        let e = Expr::pipeline(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Map(FnRef::named("double")),
        ]);
        let (_, log) = optimize(e, &reg());
        assert_eq!(log[0].rule, "map-fusion");
        assert!(log[0].before.contains("map"));
        assert!(log[0].after.contains("map"));
    }
}
