//! The transformation rules of §4, as local rewrites.
//!
//! | rule | law (paper) |
//! |---|---|
//! | `MapFusion` | `map f ∘ map g → map (f ∘ g)` — removes a barrier |
//! | `MapDistribution` | `foldr (f ∘ g) → fold f ∘ map g` (f associative) — *introduces* parallelism |
//! | `SendFusion` | `send f ∘ send g → send (f ∘ g)` |
//! | `FetchFusion` | `fetch f ∘ fetch g → fetch (g ∘ f)` |
//! | `RotateFusion` | `rotate a ∘ rotate b → rotate (a + b)` |
//! | `RotateIdentity` | `rotate 0 → id` |
//! | `Flatten` | `combine ∘ mapGroups(e) ∘ split p → segmented(e)` — nested SPMD to flat segmented form |
//!
//! Each rule is a partial function `Expr → Option<Expr>` applied at a single
//! node by the engine in [`crate::rewrite`]. Rules never inspect more than
//! one composition window, so they stay cheap and obviously terminating
//! (each strictly reduces node count or the lexicographic measure used in
//! the engine's iteration cap).

use crate::ir::{Expr, IdxRef};
use crate::registry::Registry;

/// Identifier of a rewrite rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `map f ∘ map g → map (f ∘ g)`.
    MapFusion,
    /// `foldr (f ∘ g) → fold f ∘ map g`, `f` associative.
    MapDistribution,
    /// `send f ∘ send g → send (f ∘ g)`.
    SendFusion,
    /// `fetch f ∘ fetch g → fetch (g ∘ f)`.
    FetchFusion,
    /// `rotate a ∘ rotate b → rotate (a+b)`.
    RotateFusion,
    /// `rotate 0 → id`.
    RotateIdentity,
    /// `combine ∘ mapGroups(e) ∘ split p → seg(e, p)` for flattenable `e`.
    Flatten,
    /// `map f ∘ σ → σ ∘ map f` for any pure data *permutation or
    /// duplication* σ (`rotate`, `fetch`, and their segmented forms):
    /// point-wise maps commute with data movement. Not a law from the
    /// paper's list, but a direct consequence of its functional semantics;
    /// it canonicalises programs so that maps drift together and the
    /// fusion law can fire across intervening communication.
    ///
    /// (`send` is deliberately excluded — many-to-one accumulation does
    /// not commute with arbitrary `f`.)
    MapCommCommute,
}

impl Rule {
    /// Every rule, in the order the fixpoint engine tries them.
    pub const ALL: [Rule; 8] = [
        Rule::RotateIdentity,
        Rule::RotateFusion,
        Rule::MapFusion,
        Rule::SendFusion,
        Rule::FetchFusion,
        Rule::MapDistribution,
        Rule::Flatten,
        Rule::MapCommCommute,
    ];

    /// Human-readable rule name.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::MapFusion => "map-fusion",
            Rule::MapDistribution => "map-distribution",
            Rule::SendFusion => "send-fusion",
            Rule::FetchFusion => "fetch-fusion",
            Rule::RotateFusion => "rotate-fusion",
            Rule::RotateIdentity => "rotate-identity",
            Rule::Flatten => "flatten",
            Rule::MapCommCommute => "map-comm-commute",
        }
    }

    /// All distinct single applications of this rule at the root of `e`
    /// (window rules can fire at several positions of one composition).
    pub fn apply_all(&self, e: &Expr, reg: &Registry) -> Vec<Expr> {
        match self {
            Rule::MapFusion => window_rule_all(e, |a, b| match (a, b) {
                (Expr::Map(f), Expr::Map(g)) => Some(Expr::Map(f.clone().then_after(g.clone()))),
                _ => None,
            }),
            Rule::SendFusion => window_rule_all(e, |a, b| match (a, b) {
                (Expr::Send(f), Expr::Send(g)) => Some(Expr::Send(f.clone().then_after(g.clone()))),
                _ => None,
            }),
            Rule::FetchFusion => window_rule_all(e, |a, b| match (a, b) {
                (Expr::Fetch(f), Expr::Fetch(g)) => {
                    Some(Expr::Fetch(g.clone().then_after(f.clone())))
                }
                _ => None,
            }),
            Rule::RotateFusion => window_rule_all(e, |a, b| match (a, b) {
                (Expr::Rotate(x), Expr::Rotate(y)) => Some(Expr::Rotate(x + y)),
                _ => None,
            }),
            Rule::MapCommCommute => window_rule_all(e, commute_window),
            _ => self.apply(e, reg).into_iter().collect(),
        }
    }

    /// Try to apply this rule at the root of `e`.
    pub fn apply(&self, e: &Expr, reg: &Registry) -> Option<Expr> {
        match self {
            Rule::RotateIdentity => match e {
                Expr::Rotate(0) => Some(Expr::Id),
                _ => None,
            },
            Rule::MapDistribution => match e {
                Expr::FoldrMap(op, g) if reg.is_assoc(op) => Some(Expr::Compose(vec![
                    Expr::Fold(op.clone()),
                    Expr::Map(g.clone()),
                ])),
                _ => None,
            },
            Rule::MapFusion => window_rule(e, |a, b| match (a, b) {
                (Expr::Map(f), Expr::Map(g)) => Some(Expr::Map(f.clone().then_after(g.clone()))),
                _ => None,
            }),
            Rule::SendFusion => window_rule(e, |a, b| match (a, b) {
                (Expr::Send(f), Expr::Send(g)) => {
                    // value from k travels g first, then f: dest f(g(k))
                    Some(Expr::Send(f.clone().then_after(g.clone())))
                }
                _ => None,
            }),
            Rule::FetchFusion => window_rule(e, |a, b| match (a, b) {
                (Expr::Fetch(f), Expr::Fetch(g)) => {
                    // z[i] = x[g(f(i))]: apply f first, then g
                    Some(Expr::Fetch(g.clone().then_after(f.clone())))
                }
                _ => None,
            }),
            Rule::RotateFusion => window_rule(e, |a, b| match (a, b) {
                (Expr::Rotate(x), Expr::Rotate(y)) => Some(Expr::Rotate(x + y)),
                _ => None,
            }),
            Rule::Flatten => flatten_rule(e),
            Rule::MapCommCommute => window_rule(e, commute_window),
        }
    }
}

/// Is this node a pure data permutation/duplication that commutes with
/// point-wise maps?
fn is_commuting_comm(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Rotate(_) | Expr::Fetch(_) | Expr::SegRotate { .. } | Expr::SegFetch { .. }
    )
}

/// The `[map f, σ] → [σ, map f]` window (maps drift towards the start of
/// the dataflow).
fn commute_window(a: &Expr, b: &Expr) -> Option<Expr> {
    if let (Expr::Map(f), sigma) = (a, b) {
        if is_commuting_comm(sigma) {
            return Some(Expr::Compose(vec![sigma.clone(), Expr::Map(f.clone())]));
        }
    }
    None
}

/// Apply a two-element window rule inside a composition:
/// `Compose([.., a, b, ..])` where `a` runs **after** `b`.
fn window_rule(e: &Expr, f: impl Fn(&Expr, &Expr) -> Option<Expr>) -> Option<Expr> {
    window_rule_all(e, f).into_iter().next()
}

/// All positions at which a two-element window rule fires.
fn window_rule_all(e: &Expr, f: impl Fn(&Expr, &Expr) -> Option<Expr>) -> Vec<Expr> {
    let Expr::Compose(es) = e else { return vec![] };
    let mut out = Vec::new();
    for i in 0..es.len().saturating_sub(1) {
        if let Some(merged) = f(&es[i], &es[i + 1]) {
            let mut copy = es.clone();
            copy.splice(i..i + 2, [merged]);
            out.push(Expr::Compose(copy));
        }
    }
    out
}

/// Translate a group-local body into its segmented (flat) equivalent, if
/// every constituent is segment-translatable.
pub fn flatten_body(e: &Expr, p: usize) -> Option<Expr> {
    match e {
        Expr::Id => Some(Expr::Id),
        Expr::Map(f) => Some(Expr::Map(f.clone())),
        Expr::Rotate(k) => Some(Expr::SegRotate { groups: p, k: *k }),
        Expr::Fetch(h) => Some(Expr::SegFetch {
            groups: p,
            f: h.clone(),
        }),
        Expr::Send(h) => Some(Expr::SegSend {
            groups: p,
            f: h.clone(),
        }),
        Expr::Compose(es) => {
            let flat: Option<Vec<Expr>> = es.iter().map(|x| flatten_body(x, p)).collect();
            Some(Expr::Compose(flat?))
        }
        _ => None,
    }
}

/// The flattening rule over a 3-element window
/// `[.., Combine, MapGroups(body), Split(p), ..]`.
fn flatten_rule(e: &Expr) -> Option<Expr> {
    let Expr::Compose(es) = e else { return None };
    for i in 0..es.len().saturating_sub(2) {
        if let (Expr::Combine, Expr::MapGroups(body), Expr::Split(p)) =
            (&es[i], &es[i + 1], &es[i + 2])
        {
            if let Some(flat) = flatten_body(body, *p) {
                let mut out = es.clone();
                out.splice(i..i + 3, [flat]);
                return Some(Expr::Compose(out));
            }
        }
    }
    None
}

/// Helper used in tests and benches: an `IdxRef` for the identity.
pub fn idx_id() -> IdxRef {
    IdxRef::named("id")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::FnRef;

    fn reg() -> Registry {
        Registry::standard()
    }

    #[test]
    fn map_fusion_merges_adjacent_maps() {
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("square")),
            Expr::Map(FnRef::named("inc")),
        ]);
        let out = Rule::MapFusion.apply(&e, &reg()).unwrap();
        assert_eq!(
            out,
            Expr::Compose(vec![Expr::Map(
                FnRef::named("square").then_after(FnRef::named("inc"))
            )])
        );
    }

    #[test]
    fn map_fusion_skips_non_adjacent() {
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("square")),
            Expr::Rotate(1),
            Expr::Map(FnRef::named("inc")),
        ]);
        assert_eq!(Rule::MapFusion.apply(&e, &reg()), None);
    }

    #[test]
    fn map_distribution_requires_associativity() {
        let ok = Expr::FoldrMap("add".into(), FnRef::named("square"));
        assert!(Rule::MapDistribution.apply(&ok, &reg()).is_some());
        let bad = Expr::FoldrMap("sub".into(), FnRef::named("square"));
        assert!(Rule::MapDistribution.apply(&bad, &reg()).is_none());
    }

    #[test]
    fn rotate_rules() {
        let e = Expr::Compose(vec![Expr::Rotate(2), Expr::Rotate(3)]);
        assert_eq!(
            Rule::RotateFusion.apply(&e, &reg()),
            Some(Expr::Compose(vec![Expr::Rotate(5)]))
        );
        assert_eq!(
            Rule::RotateIdentity.apply(&Expr::Rotate(0), &reg()),
            Some(Expr::Id)
        );
        assert_eq!(Rule::RotateIdentity.apply(&Expr::Rotate(1), &reg()), None);
    }

    #[test]
    fn send_and_fetch_fusion_orientation() {
        let e = Expr::Compose(vec![
            Expr::Send(IdxRef::named("half")),
            Expr::Send(IdxRef::named("succ")),
        ]);
        let out = Rule::SendFusion.apply(&e, &reg()).unwrap();
        // dest = half(succ(k)): half ∘ succ
        assert_eq!(
            out,
            Expr::Compose(vec![Expr::Send(
                IdxRef::named("half").then_after(IdxRef::named("succ"))
            )])
        );

        let e = Expr::Compose(vec![
            Expr::Fetch(IdxRef::named("half")),
            Expr::Fetch(IdxRef::named("succ")),
        ]);
        let out = Rule::FetchFusion.apply(&e, &reg()).unwrap();
        // z[i] = x[succ(half(i))]: succ ∘ half
        assert_eq!(
            out,
            Expr::Compose(vec![Expr::Fetch(
                IdxRef::named("succ").then_after(IdxRef::named("half"))
            )])
        );
    }

    #[test]
    fn flatten_rewrites_nested_rotate() {
        let e = Expr::Compose(vec![
            Expr::Combine,
            Expr::MapGroups(Box::new(Expr::Rotate(1))),
            Expr::Split(4),
        ]);
        let out = Rule::Flatten.apply(&e, &reg()).unwrap();
        assert_eq!(
            out,
            Expr::Compose(vec![Expr::SegRotate { groups: 4, k: 1 }])
        );
    }

    #[test]
    fn flatten_refuses_fold_in_groups() {
        let e = Expr::Compose(vec![
            Expr::Combine,
            Expr::MapGroups(Box::new(Expr::Fold("add".into()))),
            Expr::Split(4),
        ]);
        assert_eq!(Rule::Flatten.apply(&e, &reg()), None);
    }

    #[test]
    fn flatten_handles_composed_bodies() {
        let body = Expr::Compose(vec![Expr::Map(FnRef::named("inc")), Expr::Rotate(2)]);
        let e = Expr::Compose(vec![
            Expr::Combine,
            Expr::MapGroups(Box::new(body)),
            Expr::Split(2),
        ]);
        let out = Rule::Flatten.apply(&e, &reg()).unwrap();
        let Expr::Compose(es) = out else { panic!() };
        assert_eq!(es.len(), 1);
        assert_eq!(
            es[0],
            Expr::Compose(vec![
                Expr::Map(FnRef::named("inc")),
                Expr::SegRotate { groups: 2, k: 2 }
            ])
        );
    }

    #[test]
    fn commute_moves_map_past_rotate_and_fetch() {
        let e = Expr::Compose(vec![Expr::Map(FnRef::named("inc")), Expr::Rotate(1)]);
        let out = Rule::MapCommCommute
            .apply(&e, &reg())
            .map(crate::rewrite::normalize);
        assert_eq!(
            out,
            Some(Expr::Compose(vec![
                Expr::Rotate(1),
                Expr::Map(FnRef::named("inc"))
            ]))
        );
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Fetch(IdxRef::named("succ")),
        ]);
        assert!(Rule::MapCommCommute.apply(&e, &reg()).is_some());
    }

    #[test]
    fn commute_refuses_send() {
        // map f . send h  is NOT  send h . map f (accumulation is not
        // homomorphic in general)
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("square")),
            Expr::Send(IdxRef::named("half")),
        ]);
        assert_eq!(Rule::MapCommCommute.apply(&e, &reg()), None);
    }

    #[test]
    fn commute_enables_fusion_across_comm() {
        // map f . rotate . map g  --commute-->  rotate . map f . map g
        // --fuse--> rotate . map (f.g)
        let e = Expr::Compose(vec![
            Expr::Map(FnRef::named("inc")),
            Expr::Rotate(2),
            Expr::Map(FnRef::named("double")),
        ]);
        let (out, log) = crate::rewrite::optimize(e, &reg());
        assert!(log.iter().any(|a| a.rule == "map-comm-commute"), "{log:?}");
        assert!(log.iter().any(|a| a.rule == "map-fusion"));
        assert_eq!(out.count(&|x| matches!(x, Expr::Map(_))), 1, "{out}");
    }

    #[test]
    fn rule_names_are_unique() {
        let mut names: Vec<&str> = Rule::ALL.iter().map(Rule::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Rule::ALL.len());
    }
}
