//! The crate's central guarantee, property-tested: **every transformation
//! preserves meaning**. Random well-typed skeleton programs are generated,
//! optimised by both engines, and checked against the reference interpreter
//! on random data. (Randomised via `scl-testkit`, the workspace's
//! zero-dependency proptest replacement.)
#![allow(clippy::explicit_auto_deref)] // clippy's suggestion breaks inference on pick()

use scl_testkit::{cases, Rng};
use scl_transform::prelude::*;

/// Names available in `Registry::standard()`.
const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

fn arb_fnref(rng: &mut Rng) -> FnRef {
    if rng.bool() {
        FnRef::named(*rng.pick(SCALARS))
    } else {
        FnRef::named(*rng.pick(SCALARS)).then_after(FnRef::named(*rng.pick(SCALARS)))
    }
}

fn arb_idxref(rng: &mut Rng) -> IdxRef {
    IdxRef::named(*rng.pick(IDXFNS))
}

/// One flat (array → array) step.
fn arb_step(rng: &mut Rng) -> Expr {
    match rng.below(6) {
        0 => Expr::Id,
        1 => Expr::Map(arb_fnref(rng)),
        2 => Expr::Rotate(rng.range_i64(-8, 8)),
        3 => Expr::Fetch(arb_idxref(rng)),
        4 => Expr::Send(arb_idxref(rng)),
        _ => Expr::Scan((*rng.pick(ASSOC_OPS)).to_string()),
    }
}

/// A flattenable group body (what the flatten rule can translate).
fn arb_flattenable_body(rng: &mut Rng) -> Expr {
    let len = rng.range_usize(1, 4);
    let stages = (0..len)
        .map(|_| match rng.below(4) {
            0 => Expr::Map(arb_fnref(rng)),
            1 => Expr::Rotate(rng.range_i64(-4, 4)),
            2 => Expr::Fetch(arb_idxref(rng)),
            _ => Expr::Send(arb_idxref(rng)),
        })
        .collect();
    Expr::pipeline(stages)
}

/// A nested split/mapGroups/combine block with small group counts (inputs
/// in the tests always have ≥ 8 elements, so `split` succeeds).
fn arb_nested_block(rng: &mut Rng) -> Expr {
    let p = rng.range_usize(1, 5);
    let body = arb_flattenable_body(rng);
    Expr::pipeline(vec![
        Expr::Split(p),
        Expr::MapGroups(Box::new(body)),
        Expr::Combine,
    ])
}

/// A random well-typed array→array program.
fn arb_program(rng: &mut Rng) -> Expr {
    let len = rng.range_usize(1, 8);
    let stages = (0..len)
        .map(|_| {
            // ~4:1 flat steps to nested blocks, as the proptest version had
            if rng.below(5) < 4 {
                arb_step(rng)
            } else {
                arb_nested_block(rng)
            }
        })
        .collect();
    Expr::pipeline(stages)
}

fn arb_input(rng: &mut Rng) -> Vec<i64> {
    let len = rng.range_usize(8, 32);
    rng.vec_of(len, |r| r.range_i64(-1_000_000, 1_000_000))
}

#[test]
fn optimize_preserves_semantics() {
    cases(192, 0x71, |rng| {
        let e = arb_program(rng);
        let data = arb_input(rng);
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        let before = eval(&e, &reg, Value::Arr(data.clone()));
        let after = eval(&opt, &reg, Value::Arr(data));
        assert_eq!(before, after, "program: {} => {}", e, opt);
    });
}

#[test]
fn optimize_costed_preserves_semantics_and_cost() {
    cases(192, 0x72, |rng| {
        let e = arb_program(rng);
        let data = arb_input(rng);
        let reg = Registry::standard();
        let params = CostParams::ap1000(data.len());
        let (opt, report) = optimize_costed(e.clone(), &reg, &params).unwrap();
        assert!(report.final_cost <= report.initial_cost);
        let before = eval(&e, &reg, Value::Arr(data.clone()));
        let after = eval(&opt, &reg, Value::Arr(data));
        assert_eq!(before, after, "program: {} => {}", e, opt);
    });
}

#[test]
fn optimize_never_grows_the_term() {
    cases(192, 0x73, |rng| {
        let e = arb_program(rng);
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        assert!(
            opt.size() <= e.size(),
            "{} ({}) => {} ({})",
            e,
            e.size(),
            opt,
            opt.size()
        );
    });
}

#[test]
fn optimize_is_idempotent() {
    cases(192, 0x74, |rng| {
        let e = arb_program(rng);
        let reg = Registry::standard();
        let (once, _) = optimize(e, &reg);
        let (twice, log) = optimize(once.clone(), &reg);
        assert_eq!(once, twice);
        assert!(log.is_empty());
    });
}

#[test]
fn normalize_is_idempotent() {
    cases(192, 0x75, |rng| {
        let e = arb_program(rng);
        let n1 = normalize(e);
        let n2 = normalize(n1.clone());
        assert_eq!(n1, n2);
    });
}

#[test]
fn shapes_preserved_by_optimization() {
    cases(192, 0x76, |rng| {
        let e = arb_program(rng);
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        assert_eq!(shape_of(&e, Shape::Arr), shape_of(&opt, Shape::Arr));
    });
}

#[test]
fn map_distribution_end_to_end() {
    cases(128, 0x77, |rng| {
        // the sequential foldr and the parallel fold∘map agree for
        // associative operators
        let data = arb_input(rng);
        let op = *rng.pick(ASSOC_OPS);
        let f = arb_fnref(rng);
        let reg = Registry::standard();
        let seq = Expr::FoldrMap(op.to_string(), f);
        let (par, log) = optimize(seq.clone(), &reg);
        assert!(log.iter().any(|a| a.rule == "map-distribution"));
        let before = eval(&seq, &reg, Value::Arr(data.clone()));
        let after = eval(&par, &reg, Value::Arr(data));
        assert_eq!(before, after);
    });
}

#[test]
fn print_parse_roundtrip() {
    cases(192, 0x78, |rng| {
        // normalise first: the printer collapses what normalize collapses
        let e = normalize(arb_program(rng));
        let text = e.to_string();
        let back = scl_transform::parse(&text)
            .unwrap_or_else(|err| panic!("could not re-parse `{text}`: {err}"));
        assert_eq!(back, e, "source: {}", text);
    });
}

#[test]
fn parsed_program_means_the_same() {
    cases(128, 0x79, |rng| {
        let e = normalize(arb_program(rng));
        let data = arb_input(rng);
        let reg = Registry::standard();
        let back = scl_transform::parse(&e.to_string()).unwrap();
        assert_eq!(
            eval(&e, &reg, Value::Arr(data.clone())),
            eval(&back, &reg, Value::Arr(data))
        );
    });
}

#[test]
fn estimated_cost_total_for_valid_programs() {
    cases(192, 0x7A, |rng| {
        let e = arb_program(rng);
        let n = rng.range_usize(8, 64);
        let reg = Registry::standard();
        let params = CostParams::ap1000(n);
        // every generated program estimates successfully and non-negatively
        let c = estimate(&e, &reg, &params);
        assert!(c.is_ok(), "{e}: {c:?}");
        assert!(c.unwrap().as_secs() >= 0.0);
    });
}
