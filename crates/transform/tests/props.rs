//! The crate's central guarantee, property-tested: **every transformation
//! preserves meaning**. Random well-typed skeleton programs are generated,
//! optimised by both engines, and checked against the reference interpreter
//! on random data.

use proptest::prelude::*;
use scl_transform::prelude::*;

/// Names available in `Registry::standard()`.
const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

fn arb_fnref() -> impl Strategy<Value = FnRef> {
    prop_oneof![
        prop::sample::select(SCALARS).prop_map(FnRef::named),
        (prop::sample::select(SCALARS), prop::sample::select(SCALARS))
            .prop_map(|(a, b)| FnRef::named(a).then_after(FnRef::named(b))),
    ]
}

fn arb_idxref() -> impl Strategy<Value = IdxRef> {
    prop::sample::select(IDXFNS).prop_map(IdxRef::named)
}

/// One flat (array → array) step.
fn arb_step() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(Expr::Id),
        arb_fnref().prop_map(Expr::Map),
        (-8i64..8).prop_map(Expr::Rotate),
        arb_idxref().prop_map(Expr::Fetch),
        arb_idxref().prop_map(Expr::Send),
        prop::sample::select(ASSOC_OPS).prop_map(|op| Expr::Scan(op.to_string())),
    ]
}

/// A flattenable group body (what the flatten rule can translate).
fn arb_flattenable_body() -> impl Strategy<Value = Expr> {
    prop::collection::vec(
        prop_oneof![
            arb_fnref().prop_map(Expr::Map),
            (-4i64..4).prop_map(Expr::Rotate),
            arb_idxref().prop_map(Expr::Fetch),
            arb_idxref().prop_map(Expr::Send),
        ],
        1..4,
    )
    .prop_map(Expr::pipeline)
}

/// A nested split/mapGroups/combine block with small group counts (inputs
/// in the tests always have ≥ 8 elements, so `split` succeeds).
fn arb_nested_block() -> impl Strategy<Value = Expr> {
    (1usize..=4, arb_flattenable_body()).prop_map(|(p, body)| {
        Expr::pipeline(vec![Expr::Split(p), Expr::MapGroups(Box::new(body)), Expr::Combine])
    })
}

/// A random well-typed array→array program.
fn arb_program() -> impl Strategy<Value = Expr> {
    prop::collection::vec(
        prop_oneof![4 => arb_step(), 1 => arb_nested_block()],
        1..8,
    )
    .prop_map(Expr::pipeline)
}

fn arb_input() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1_000_000i64..1_000_000, 8..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn optimize_preserves_semantics(e in arb_program(), data in arb_input()) {
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        let before = eval(&e, &reg, Value::Arr(data.clone()));
        let after = eval(&opt, &reg, Value::Arr(data));
        prop_assert_eq!(before, after, "program: {} => {}", e, opt);
    }

    #[test]
    fn optimize_costed_preserves_semantics_and_cost(e in arb_program(), data in arb_input()) {
        let reg = Registry::standard();
        let params = CostParams::ap1000(data.len());
        let (opt, report) = optimize_costed(e.clone(), &reg, &params).unwrap();
        prop_assert!(report.final_cost <= report.initial_cost);
        let before = eval(&e, &reg, Value::Arr(data.clone()));
        let after = eval(&opt, &reg, Value::Arr(data));
        prop_assert_eq!(before, after, "program: {} => {}", e, opt);
    }

    #[test]
    fn optimize_never_grows_the_term(e in arb_program()) {
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        prop_assert!(opt.size() <= e.size(), "{} ({}) => {} ({})",
            e, e.size(), opt, opt.size());
    }

    #[test]
    fn optimize_is_idempotent(e in arb_program()) {
        let reg = Registry::standard();
        let (once, _) = optimize(e, &reg);
        let (twice, log) = optimize(once.clone(), &reg);
        prop_assert_eq!(once, twice);
        prop_assert!(log.is_empty());
    }

    #[test]
    fn normalize_is_idempotent(e in arb_program()) {
        let n1 = normalize(e);
        let n2 = normalize(n1.clone());
        prop_assert_eq!(n1, n2);
    }

    #[test]
    fn shapes_preserved_by_optimization(e in arb_program()) {
        let reg = Registry::standard();
        let (opt, _) = optimize(e.clone(), &reg);
        prop_assert_eq!(shape_of(&e, Shape::Arr), shape_of(&opt, Shape::Arr));
    }

    #[test]
    fn map_distribution_end_to_end(data in arb_input(),
                                   op in prop::sample::select(ASSOC_OPS),
                                   f in arb_fnref()) {
        // the sequential foldr and the parallel fold∘map agree for
        // associative operators
        let reg = Registry::standard();
        let seq = Expr::FoldrMap(op.to_string(), f);
        let (par, log) = optimize(seq.clone(), &reg);
        prop_assert!(log.iter().any(|a| a.rule == "map-distribution"));
        let before = eval(&seq, &reg, Value::Arr(data.clone()));
        let after = eval(&par, &reg, Value::Arr(data));
        prop_assert_eq!(before, after);
    }

    #[test]
    fn print_parse_roundtrip(e in arb_program()) {
        // normalise first: the printer collapses what normalize collapses
        let e = normalize(e);
        let text = e.to_string();
        let back = scl_transform::parse(&text)
            .unwrap_or_else(|err| panic!("could not re-parse `{text}`: {err}"));
        prop_assert_eq!(back, e, "source: {}", text);
    }

    #[test]
    fn parsed_program_means_the_same(e in arb_program(), data in arb_input()) {
        let reg = Registry::standard();
        let e = normalize(e);
        let back = scl_transform::parse(&e.to_string()).unwrap();
        prop_assert_eq!(
            eval(&e, &reg, Value::Arr(data.clone())),
            eval(&back, &reg, Value::Arr(data))
        );
    }

    #[test]
    fn estimated_cost_total_for_valid_programs(e in arb_program(), n in 8usize..64) {
        let reg = Registry::standard();
        let params = CostParams::ap1000(n);
        // every generated program estimates successfully and non-negatively
        let c = estimate(&e, &reg, &params);
        prop_assert!(c.is_ok(), "{e}: {c:?}");
        prop_assert!(c.unwrap().as_secs() >= 0.0);
    }
}
