//! Cannon's matrix multiplication on a processor grid — the 2-D regular
//! communication skeletons (`rotate_row` / `rotate_col`) at work.
//!
//! ```text
//! cargo run --release --example cannon_matmul [n] [q]
//! ```
//!
//! Multiplies two random `n × n` matrices on a `q × q` grid of simulated
//! AP1000 cells, verifies against the naive sequential product, and sweeps
//! the grid size.

use scl::apps::cannon::cannon_matmul;
use scl::apps::workloads::random_matrix;
use scl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let q: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    assert!(
        n.is_multiple_of(q),
        "grid size {q} must divide matrix size {n}"
    );

    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    println!(
        "C = A * B for {n}x{n} matrices on a {q}x{q} grid ({} cells)\n",
        q * q
    );

    let expect = a.matmul(&b);
    let mut scl = Scl::ap1000(q * q);
    let c = cannon_matmul(&mut scl, &a, &b, q);
    println!("max |C - C_naive| = {:.3e}", c.max_abs_diff(&expect));
    println!("predicted time    = {}", scl.makespan());
    println!("{}\n", scl.machine.report());

    println!("grid sweep:");
    println!("  grid   cells  predicted_time  speedup");
    let mut t1 = None;
    for qq in [1usize, 2, 4] {
        if !n.is_multiple_of(qq) {
            continue;
        }
        let mut scl = Scl::ap1000(qq * qq);
        let _ = cannon_matmul(&mut scl, &a, &b, qq);
        let t = scl.makespan().as_secs();
        let base = *t1.get_or_insert(t);
        println!(
            "  {qq:>2}x{qq:<2}  {:>5}  {:>14.4}s  {:>7.2}",
            qq * qq,
            t,
            base / t
        );
    }
}
