//! Gauss–Jordan linear solver — the paper's §3 first worked example.
//!
//! ```text
//! cargo run --release --example gauss_jordan [n] [p]
//! ```
//!
//! Solves a random diagonally-dominant `n × n` system on `p` simulated
//! AP1000 cells with the column-block-distributed Gauss–Jordan program
//! (`iterFor` + `applybrdcast PARTIALPIVOT` + `map UPDATE`), verifies the
//! residual, and sweeps the processor count to show the scaling.

use scl::apps::gauss::{gauss_jordan_scl, gauss_jordan_seq};
use scl::apps::workloads::{diag_dominant_system, residual};
use scl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(96);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let (a, b) = diag_dominant_system(n, 42);
    println!("solving a random diagonally-dominant {n}x{n} system\n");

    let x_seq = gauss_jordan_seq(&a, &b);
    println!("sequential residual: {:.3e}", residual(&a, &x_seq, &b));

    let mut scl = Scl::ap1000(p);
    let x = gauss_jordan_scl(&mut scl, &a, &b, p);
    println!(
        "SCL ({p} cells):      residual {:.3e}, identical to sequential: {}",
        residual(&a, &x, &b),
        x == x_seq
    );
    println!("predicted time:      {}", scl.makespan());
    println!("{}\n", scl.machine.report());

    println!("processor sweep (same system):");
    println!("  procs  predicted_time  speedup");
    let mut t1 = None;
    for procs in [1usize, 2, 4, 8, 16] {
        let mut scl = Scl::ap1000(procs);
        let _ = gauss_jordan_scl(&mut scl, &a, &b, procs);
        let t = scl.makespan().as_secs();
        let base = *t1.get_or_insert(t);
        println!("  {procs:>5}  {:>14.4}s  {:>7.2}", t, base / t);
    }
}
