//! Hyperquicksort on a simulated hypercube — the paper's §3/§5 flagship.
//!
//! ```text
//! cargo run --release --example hypersort [n] [dim]
//! ```
//!
//! Sorts `n` random keys (default 100 000) on a `2^dim`-processor hypercube
//! (default dim 5 = 32 processors, the paper's largest configuration),
//! with both the nested recursive formulation and the flattened SPMD one,
//! and reports predicted runtimes and communication counts.

use scl::apps::hyperquicksort::{hyperquicksort_flat, hyperquicksort_nested, sequential_sort};
use scl::apps::workloads::uniform_keys;
use scl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let dim: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let p = 1usize << dim;

    let data = uniform_keys(n, 1995);
    println!("sorting {n} random keys on a {p}-processor hypercube (AP1000 model)\n");

    let (seq, seq_work) = sequential_sort(&data);
    let seq_time = seq_work.cost(&CostModel::ap1000());
    println!(
        "sequential quicksort:     {seq_time}   ({} comparisons)",
        seq_work.cmps
    );

    let mut scl = Scl::hypercube(p, CostModel::ap1000());
    let flat = hyperquicksort_flat(&mut scl, &data, dim);
    assert_eq!(flat, seq);
    println!(
        "flattened hyperquicksort: {}   speedup {:.2}, {} msgs, {} bytes",
        scl.makespan(),
        seq_time / scl.makespan(),
        scl.machine.metrics.messages,
        scl.machine.metrics.bytes
    );

    let mut scl = Scl::hypercube(p, CostModel::ap1000());
    let nested = hyperquicksort_nested(&mut scl, &data, dim);
    assert_eq!(nested, seq);
    println!(
        "nested hyperquicksort:    {}   speedup {:.2}, {} msgs, {} bytes",
        scl.makespan(),
        seq_time / scl.makespan(),
        scl.machine.metrics.messages,
        scl.machine.metrics.bytes
    );

    println!(
        "\nall three agree; first 10 keys: {:?}",
        &flat[..10.min(flat.len())]
    );
}
