//! Jacobi relaxation on a heat rod — `iterUntil`, halo shifts, and a global
//! residual reduction.
//!
//! ```text
//! cargo run --release --example jacobi [n] [p]
//! ```

use scl::apps::jacobi::{jacobi_scl, jacobi_seq};
use scl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    // rod with fixed ends at 0 and 100 degrees
    let mut u0 = vec![0.0f64; n];
    u0[n - 1] = 100.0;

    println!("heat rod, {n} cells, fixed ends 0/100, tol 1e-6, {p} processors\n");
    let seq = jacobi_seq(&u0, 1e-6, 1_000_000);
    println!(
        "sequential: {} sweeps, residual {:.2e}",
        seq.iterations, seq.residual
    );

    let mut scl = Scl::ap1000(p);
    let par = jacobi_scl(&mut scl, &u0, p, 1e-6, 1_000_000);
    println!(
        "SCL:        {} sweeps, residual {:.2e}, identical to sequential: {}",
        par.iterations,
        par.residual,
        par == seq
    );
    println!("predicted time on {p} cells: {}", scl.makespan());
    println!("{}\n", scl.machine.report());

    // the converged profile is a straight line between the boundary values
    println!("final profile (every {}th cell):", (n / 16).max(1));
    let step = (n / 16).max(1);
    for i in (0..n).step_by(step) {
        let bar = "#".repeat((par.u[i] / 2.0) as usize);
        println!("  u[{i:>4}] = {:>7.2}  {bar}", par.u[i]);
    }
}
