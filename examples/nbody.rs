//! Systolic N-body simulation on a rotating ring — `rotate` + `iter_for`
//! computing all-pairs forces with O(n²/p) work per processor.
//!
//! ```text
//! cargo run --release --example nbody [n] [p] [steps]
//! ```

use scl::apps::nbody::{forces_scl, forces_seq, integrate, random_bodies};
use scl::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(512);
    let p: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let mut bodies = random_bodies(n, 7);
    println!("{n} bodies, {p} simulated AP1000 cells, {steps} time steps\n");

    // verify the parallel forces once against the sequential baseline
    let seq = forces_seq(&bodies);
    let mut scl = Scl::ap1000(p);
    let par = forces_scl(&mut scl, &bodies, p);
    let max_err = seq
        .iter()
        .zip(&par)
        .map(|(a, b)| (a[0] - b[0]).abs().max((a[1] - b[1]).abs()))
        .fold(0.0f64, f64::max);
    println!("max |F_par - F_seq| = {max_err:.3e}");
    println!("one force sweep on {p} cells: {}", scl.makespan());
    println!("{}\n", scl.machine.report());

    // short simulation
    for step in 0..steps {
        let mut scl = Scl::ap1000(p);
        let f = forces_scl(&mut scl, &bodies, p);
        integrate(&mut bodies, &f, 0.05);
        let cx: f64 = bodies.iter().map(|b| b.pos[0] * b.mass).sum::<f64>()
            / bodies.iter().map(|b| b.mass).sum::<f64>();
        println!(
            "step {step}: centre of mass x = {cx:.6}, predicted sweep time {}",
            scl.makespan()
        );
    }

    println!("\nprocessor sweep (one force evaluation):");
    println!("  procs  predicted  speedup");
    let mut t1 = None;
    for procs in [1usize, 2, 4, 8, 16] {
        let mut scl = Scl::ap1000(procs);
        let _ = forces_scl(&mut scl, &random_bodies(n, 7), procs);
        let t = scl.makespan().as_secs();
        let base = *t1.get_or_insert(t);
        println!("  {procs:>5}  {t:>8.4}s  {:>6.2}", base / t);
    }
}
