//! The TCP front door: the plan service behind a socket.
//!
//! Starts an `scl-net` server on loopback with two tenants — `gold`
//! holding a `p99 < 25ms` latency contract, `bulk` running best-effort —
//! then drives it from plain `NetClient` connections:
//!
//! 1. submit plan *source* (compiled, cached, answered with a handle),
//! 2. resubmit by *handle* (no source on the wire, same answer, same
//!    per-request `MachineReport`),
//! 3. trip a typed error (a parse error never kills the connection),
//! 4. read the stats document the autonomic manager also watches,
//! 5. drain and shut down gracefully.
//!
//! ```text
//! cargo run --release --example net_serve [requests]
//! ```

use std::time::Duration;

use scl_net::{Mode, NetClient, NetConfig, NetServer, SloContract, TenantSpec};

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let server = NetServer::start(NetConfig {
        procs: 8,
        tenants: vec![
            TenantSpec::new("gold")
                .with_weight(3)
                .with_slo(SloContract::parse("p99<25ms").unwrap()),
            TenantSpec::new("bulk"),
        ],
        manager_tick: Duration::from_millis(50),
        ..NetConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("scl-net listening on {addr}");

    // --- 1. ship source, get a compiled handle back ---------------------
    let mut gold = NetClient::connect(addr).expect("connect");
    let input: Vec<i64> = (1..=8).collect();
    let first = gold
        .submit_source(
            0,
            Mode::Plain,
            "map(square) . rotate(1) . scan(add)",
            "",
            &input,
        )
        .expect("gold submit");
    println!(
        "gold:  source submit -> {:?}  (handle {:#018x}, {} msgs, {} flops)",
        first.output, first.handle, first.report.metrics.messages, first.report.metrics.flops
    );

    // --- 2. the handle fast path: no source on the wire -----------------
    for k in 0..requests {
        let shifted: Vec<i64> = input.iter().map(|x| x + k as i64).collect();
        let r = gold
            .submit_handle(0, first.handle, &shifted)
            .expect("handle resubmit");
        if k == 0 {
            assert_eq!(r.output, first.output);
            assert_eq!(r.report, first.report, "same plan, same private accounting");
        }
    }
    println!("gold:  {requests} handle resubmissions served from the plan cache");

    // --- 3. typed errors leave the connection alive ---------------------
    let mut bulk = NetClient::connect(addr).expect("connect");
    match bulk.submit_source(1, Mode::Plain, "map(", "", &input) {
        Err(scl_net::ClientError::Server { code, message, .. }) => {
            println!("bulk:  typed error as designed: {code:?}: {message}")
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    let ok = bulk
        .submit_source(
            1,
            Mode::Optimized,
            "map(double) . rotate(2) . rotate(-2)",
            "",
            &input,
        )
        .expect("bulk optimized submit — the connection survived the error");
    println!(
        "bulk:  optimized submit (rotations cancel under §4 laws) -> {:?}",
        ok.output
    );

    // --- 4. the stats document ------------------------------------------
    let stats = gold.stats().expect("stats");
    println!("\nstats (what the MAPE manager reads):\n{stats}\n");

    // --- 5. graceful drain ----------------------------------------------
    gold.drain().expect("drain");
    match gold.submit_source(0, Mode::Plain, "map(inc)", "", &input) {
        Err(scl_net::ClientError::Server { code, .. }) => {
            println!("draining: new work refused with {code:?}")
        }
        other => panic!("expected Draining, got {other:?}"),
    }
    server.shutdown();
    println!("server drained and shut down cleanly");
}
