//! The §4 transformation engine in action — through the first-class plan
//! API. A wasteful skeleton program is written **once** as a `Skel` plan,
//! then run two ways: eagerly, and via `Scl::run_optimized`, which lowers
//! the plan into the transformation IR, applies the paper's laws (map
//! fusion, communication algebra, flattening), raises the optimised
//! program back, and executes it — same answer, less virtual time.
//!
//! ```text
//! cargo run --release --example optimizer
//! ```

use scl::prelude::*;

fn main() {
    let reg = Registry::standard();
    let params = CostParams::ap1000(1024);

    // A deliberately naive program as a typed plan: two fetches, two
    // cancelling rotations, two separate maps. Written in execution order
    // (first stage first) — `.then` is flipped function composition.
    let plan = Skel::map_sym("inc", &reg)
        .then(Skel::map_sym("double", &reg))
        .then(Skel::rotate(3))
        .then(Skel::rotate(-3))
        .then(Skel::fetch_sym("succ", &reg))
        .then(Skel::fetch_sym("succ", &reg));

    let program = plan
        .lower(&reg)
        .expect("every stage is in the lowerable fragment");
    println!("plan lowers to:\n  {program}\n");
    let c0 = estimate(&program, &reg, &params).unwrap();
    println!("estimated cost (1024 elems, AP1000): {c0}\n");

    // Run it both ways on the simulated machine.
    let input = scl::core::ParArray::from_parts((0..1024).collect::<Vec<i64>>());

    let mut eager_ctx = Scl::ap1000(1024);
    let eager = plan.run(&mut eager_ctx, input.clone());

    let mut opt_ctx = Scl::ap1000(1024);
    let (optimized_out, log) = opt_ctx.run_optimized(&plan, &reg, input.clone());

    println!("applied rewrites:");
    for step in &log {
        println!("  [{}]", step.rule);
        println!("      {}", step.before);
        println!("   => {}", step.after);
    }

    let (optimized, _) = optimize(program.clone(), &reg);
    println!("\noptimized program:\n  {optimized}\n");
    let c1 = estimate(&optimized, &reg, &params).unwrap();
    println!(
        "estimated cost after: {c1}  ({:.1}% saved)",
        100.0 * (1.0 - c1 / c0)
    );

    // The guarantee that makes this safe: identical results...
    assert_eq!(eager, optimized_out);
    // ...and the interpreter agrees too.
    let flat: Vec<i64> = (0..1024).collect();
    let interp = eval(&program, &reg, Value::Arr(flat)).unwrap();
    assert_eq!(interp, Value::Arr(eager.to_vec()));
    println!("\neager run and optimize-then-execute computed identical results ✓");
    println!(
        "virtual time: eager {} vs optimized {}  |  messages: {} vs {}",
        eager_ctx.makespan(),
        opt_ctx.makespan(),
        eager_ctx.machine.metrics.messages,
        opt_ctx.machine.metrics.messages
    );

    // Plans with nested structure optimise too: the flatten law turns
    // split/mapGroups/combine into a segmented rotate.
    let nested = scl_transform::parse("combine . mapGroups[rotate(1)] . split(4)").unwrap();
    let nested_plan = Skel::from_expr(&nested, &reg).unwrap();
    let mut ctx = Scl::ap1000(1024);
    let (_, nested_log) = ctx.run_optimized(&nested_plan, &reg, input);
    println!("\nnested plan rewrites:");
    for step in &nested_log {
        println!("  [{}] {} => {}", step.rule, step.before, step.after);
    }

    // Cost-directed greedy search reaches the same place here:
    let (best, report) = optimize_costed(program, &reg, &params).unwrap();
    println!(
        "\ncost-directed search: {} steps, {} -> {}\n  final: {best}",
        report.steps.len(),
        report.initial_cost,
        report.final_cost
    );
}
