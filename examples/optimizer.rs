//! The §4 transformation engine in action: take a wasteful skeleton
//! program, apply the paper's laws (map fusion, communication algebra,
//! flattening), verify meaning preservation with the reference
//! interpreter, and compare estimated costs on the AP1000 model.
//!
//! ```text
//! cargo run --release --example optimizer
//! ```

use scl::prelude::*;

fn main() {
    let reg = Registry::standard();
    let params = CostParams::ap1000(1024);

    // A deliberately naive program, written in SCL's concrete syntax:
    //   two fetches, two cancelling rotations, two separate maps, then a
    //   nested rotate inside 4 processor groups.
    // (composition order: rightmost runs first)
    let source = "fetch(succ) . fetch(succ) . rotate(-3) . rotate(3) \
                  . map(double) . map(inc) \
                  . combine . mapGroups[rotate(1)] . split(4)";
    let program = scl_transform::parse(source).expect("valid program text");

    println!("original program:\n  {program}\n");
    let c0 = estimate(&program, &reg, &params).unwrap();
    println!("estimated cost (1024 elems, AP1000): {c0}\n");

    let (optimized, log) = optimize(program.clone(), &reg);
    println!("applied rewrites:");
    for step in &log {
        println!("  [{}]", step.rule);
        println!("      {}", step.before);
        println!("   => {}", step.after);
    }
    println!("\noptimized program:\n  {optimized}\n");
    let c1 = estimate(&optimized, &reg, &params).unwrap();
    println!("estimated cost after: {c1}  ({:.1}% saved)\n", 100.0 * (1.0 - c1 / c0));

    // The guarantee that makes this safe: identical meaning.
    let input: Vec<i64> = (0..1024).collect();
    let before = eval(&program, &reg, Value::Arr(input.clone())).unwrap();
    let after = eval(&optimized, &reg, Value::Arr(input)).unwrap();
    assert_eq!(before, after);
    println!("interpreter check: optimized program computes the identical result ✓");

    // Cost-directed greedy search reaches the same place here:
    let (best, report) = optimize_costed(program, &reg, &params).unwrap();
    println!(
        "\ncost-directed search: {} steps, {} -> {}\n  final: {best}",
        report.steps.len(),
        report.initial_cost,
        report.final_cost
    );
}
