//! The task-parallel pipeline skeleton — the "parallel composition of
//! concurrent tasks" extension the paper's conclusion sketches — written
//! as a first-class `Skel` plan and reused across three machines,
//! including a heterogeneous one (one slow cell).
//!
//! ```text
//! cargo run --release --example pipeline [items]
//! ```

use scl::prelude::*;

type Stage = Box<dyn Fn(&Vec<u8>) -> (Vec<u8>, Work) + Sync>;

fn stages() -> Vec<Stage> {
    // A three-stage image-ish pipeline over byte blocks: decode → filter →
    // encode, with the middle stage twice as heavy.
    let decode: Stage = Box::new(|blk| {
        let out: Vec<u8> = blk.iter().map(|b| b.wrapping_add(1)).collect();
        (out, Work::moves(blk.len() as u64))
    });
    let filter: Stage = Box::new(|blk| {
        let out: Vec<u8> = blk.iter().map(|b| b.wrapping_mul(3)).collect();
        (out, Work::moves(2 * blk.len() as u64))
    });
    let encode: Stage = Box::new(|blk| {
        let out: Vec<u8> = blk.iter().rev().copied().collect();
        (out, Work::moves(blk.len() as u64))
    });
    vec![decode, filter, encode]
}

fn main() {
    let items: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let blocks: Vec<Vec<u8>> = (0..items).map(|i| vec![(i % 251) as u8; 256]).collect();

    // The program exists once, as a value; contexts come and go.
    let plan = Skel::task_pipeline(stages());

    // homogeneous machine
    let mut scl = Scl::ap1000(3);
    let out = plan.run(&mut scl, blocks.clone());
    println!("{} blocks through 3 stages", out.len());
    println!("pipelined (3 cells):   {}", scl.makespan());

    // sequential reference: all three stages fused onto one cell
    let s = stages();
    let fused: Stage = Box::new(move |blk| {
        let (a, w1) = s[0](blk);
        let (b, w2) = s[1](&a);
        let (c, w3) = s[2](&b);
        (c, w1 + w2 + w3)
    });
    let seq_plan = Skel::task_pipeline(vec![fused]);
    let mut seq = Scl::ap1000(1);
    let out_seq = seq_plan.run(&mut seq, blocks.clone());
    assert_eq!(out, out_seq);
    println!("sequential (1 cell):   {}", seq.makespan());
    println!(
        "pipeline speedup:      {:.2} (bounded by the heavy middle stage)\n",
        seq.makespan() / scl.makespan()
    );

    // heterogeneous: the middle cell is half speed — the bottleneck widens.
    // Same plan value, different machine.
    let mut hetero = Scl::ap1000(3);
    hetero.machine.set_speed(1, 0.5);
    let out_h = plan.run(&mut hetero, blocks);
    assert_eq!(out, out_h);
    println!("with cell 1 at half speed: {}", hetero.makespan());
    println!(
        "slowdown vs homogeneous:   {:.2}x — the pipeline is only as fast as its slowest stage",
        hetero.makespan() / scl.makespan()
    );
}
