//! The task-parallel pipeline skeleton — the "parallel composition of
//! concurrent tasks" extension the paper's conclusion sketches — including
//! what happens on a heterogeneous machine (one slow cell).
//!
//! ```text
//! cargo run --release --example pipeline [items]
//! ```

use scl::core::skeletons::compute::PipeStageFn;
use scl::prelude::*;

fn main() {
    let items: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200);

    // A three-stage image-ish pipeline over byte blocks: decode → filter →
    // encode, with the middle stage twice as heavy.
    let decode: PipeStageFn<'_, Vec<u8>> = &|blk| {
        let out: Vec<u8> = blk.iter().map(|b| b.wrapping_add(1)).collect();
        (out, Work::moves(blk.len() as u64))
    };
    let filter: PipeStageFn<'_, Vec<u8>> = &|blk| {
        let out: Vec<u8> = blk.iter().map(|b| b.wrapping_mul(3)).collect();
        (out, Work::moves(2 * blk.len() as u64))
    };
    let encode: PipeStageFn<'_, Vec<u8>> = &|blk| {
        let out: Vec<u8> = blk.iter().rev().copied().collect();
        (out, Work::moves(blk.len() as u64))
    };

    let blocks: Vec<Vec<u8>> = (0..items).map(|i| vec![(i % 251) as u8; 256]).collect();

    // homogeneous machine
    let mut scl = Scl::ap1000(3);
    let out = scl.pipeline(&[decode, filter, encode], blocks.clone());
    println!("{} blocks through 3 stages", out.len());
    println!("pipelined (3 cells):   {}", scl.makespan());

    // sequential reference: all three stages on one cell
    let mut seq = Scl::ap1000(1);
    let fused: PipeStageFn<'_, Vec<u8>> = &|blk| {
        let (a, w1) = decode(blk);
        let (b, w2) = filter(&a);
        let (c, w3) = encode(&b);
        (c, w1 + w2 + w3)
    };
    let out_seq = seq.pipeline(&[fused], blocks.clone());
    assert_eq!(out, out_seq);
    println!("sequential (1 cell):   {}", seq.makespan());
    println!(
        "pipeline speedup:      {:.2} (bounded by the heavy middle stage)\n",
        seq.makespan() / scl.makespan()
    );

    // heterogeneous: the middle cell is half speed — the bottleneck widens
    let mut hetero = Scl::ap1000(3);
    hetero.machine.set_speed(1, 0.5);
    let out_h = hetero.pipeline(&[decode, filter, encode], blocks);
    assert_eq!(out, out_h);
    println!("with cell 1 at half speed: {}", hetero.makespan());
    println!(
        "slowdown vs homogeneous:   {:.2}x — the pipeline is only as fast as its slowest stage",
        hetero.makespan() / scl.makespan()
    );
}
