//! Quickstart: the two-tier SCL programming model in one file.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! An SCL program has an upper coordination layer (skeletons, here) and a
//! lower sequential layer (plain Rust closures). This example walks the
//! three skeleton families on a simulated 8-cell AP1000: configuration
//! (partition/align), elementary (map/fold + communication), and
//! computational (iterFor), then prints the machine's verdict — predicted
//! runtime, message counts, and a Gantt chart of the virtual timeline.
//!
//! Every skeleton comes in two styles: the **eager** methods on `Scl`
//! used below, and the **plan** combinators on `Skel` (same skeletons as
//! first-class values, composable with `.then`, optimisable before
//! execution) — the final section shows both side by side.

use scl::prelude::*;

fn main() {
    // A simulated AP1000 with 8 cells; trace enabled for the Gantt chart.
    let mut scl = Scl::ap1000(8);
    scl.machine.trace.enable();

    // ---- configuration skeletons ---------------------------------------
    // Block-distribute two 80k-element vectors and align them into a
    // configuration (a distributed array of co-located pairs).
    let n = 80_000;
    let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
    let cfg = scl.distribution2(Pattern::Block(8), &x, Pattern::Block(8), &y);

    // ---- elementary skeletons -------------------------------------------
    // Local dot products (each part reports its own work), then a global
    // tree reduction.
    let partials = scl.map_costed(&cfg, |(xs, ys)| {
        let dot: f64 = xs.iter().zip(ys).map(|(a, b)| a * b).sum();
        (dot, Work::flops(2 * xs.len() as u64))
    });
    let dot = scl.fold(&partials, |a, b| a + b);
    println!("dot(x, y)           = {dot:.6}");

    // A regular communication skeleton: rotate the partial sums one
    // processor to the left and take pairwise differences.
    let rotated = scl.rotate(1, &partials);
    let diffs = scl.zip_with(&partials, &rotated, |a, b| a - b);
    println!(
        "neighbour diffs     = {:?}",
        diffs
            .to_vec()
            .iter()
            .map(|d| (d * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );

    // ---- computational skeletons ----------------------------------------
    // iterFor: three sweeps of a toy smoothing iteration over the partials.
    let smoothed = scl.iter_for(
        3,
        |scl, _, arr: ParArray<f64>| {
            let left = scl.rotate(-1, &arr);
            let right = scl.rotate(1, &arr);
            let cfg = align(align(left, right), arr);
            scl.map_costed(&cfg, |((l, r), c)| ((l + r + c) / 3.0, Work::flops(3)))
        },
        partials,
    );
    println!(
        "smoothed partials   = {:?}",
        smoothed
            .to_vec()
            .iter()
            .map(|d| (d * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );

    // ---- the plan API: the same program as a value -----------------------
    // The eager calls above execute as they are written. A `Skel` plan is
    // the same skeleton program held as a *value*: write once, run against
    // any context — or, for the symbolic fragment, let the §4 rewrite laws
    // shrink it first.
    let reg = Registry::standard();
    let plan = Skel::map_sym("square", &reg) // map with a registered symbol
        .then(Skel::rotate(2)) // ... a rotation
        .then(Skel::rotate(-2)) // ... that cancels
        .then(Skel::map_sym("inc", &reg)); // ... and a second map
    let ints = scl::core::ParArray::from_parts((0..8).collect::<Vec<i64>>());

    // eager run: executes stage by stage, exactly as composed
    let mut plan_ctx = Scl::ap1000(8);
    let eager = plan.run(&mut plan_ctx, ints.clone());

    // optimise-then-execute: rotations cancel, the maps fuse into one
    let mut opt_ctx = Scl::ap1000(8);
    let (optimized, log) = opt_ctx.run_optimized(&plan, &reg, ints.clone());
    assert_eq!(eager, optimized);
    println!();
    println!("plan:      {}", plan.lower(&reg).unwrap());
    println!(
        "optimized: {} rewrites applied, identical result ✓",
        log.len()
    );

    // ---- fused, partition-resident execution -----------------------------
    // `run_fused` compiles the plan into per-partition stage chains: runs
    // of compute skeletons execute back-to-back on the worker that owns
    // each partition (no intermediate arrays, one thread-pool dispatch per
    // segment), with communication skeletons as the only barriers. Same
    // answer as the eager run, bit for bit; `ExecPolicy::cost_driven()`
    // lets the machine's cost model decide per segment whether fanning out
    // across host threads is worth it.
    let mut fused_ctx = Scl::ap1000(8).with_policy(ExecPolicy::cost_driven());
    let fused = fused_ctx
        .run_fused(&plan, ints)
        .expect("configuration fits the machine");
    assert_eq!(eager, fused);
    let stages = plan.fused_stages().unwrap();
    let barriers = stages.iter().filter(|(_, b)| *b).count();
    println!(
        "fused:     {} stages, {} barriers, identical result ✓",
        stages.len(),
        barriers
    );

    // ---- the machine's verdict -------------------------------------------
    println!();
    println!("predicted runtime on 8 AP1000 cells: {}", scl.makespan());
    println!("{}", scl.machine.report());
    println!();
    println!("virtual timeline (# compute, = collective, | barrier):");
    print!("{}", scl.machine.trace.gantt(8, 64));
}
