//! The multi-tenant plan service: many clients, one shared machine.
//!
//! Three tenants with different weights submit requests against a shared
//! `scl-serve` front-end: two of them serve the *same* plan (so they
//! share one compiled graph — watch the cache hit counter), the third
//! submits a symbolic plan through the optimize-then-execute path (the
//! §4 rewrite laws run once, at compile time, not per request). The
//! shard scheduler splits the host thread budget into weighted fair
//! shares each round, and every request completes with its own
//! `MachineReport`, exactly as a solo run would have produced.
//!
//! ```text
//! cargo run --release --example serving [requests_per_tenant]
//! ```

use scl::prelude::*;
use scl_serve::Ticket;

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let p = 8;

    let policy = ServePolicy::new(Machine::ap1000(p))
        .with_exec(ExecPolicy::Threads(4))
        .with_threads(4) // the host budget every tenant shares
        .with_batch_window(8)
        .with_plan_cache_cap(16);
    let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(policy);

    let alice = srv.add_tenant("alice");
    let bob = srv.add_tenant_weighted("bob", 2);
    let carol = srv.add_tenant_weighted("carol", 1);

    // alice and bob run the same pipeline: square, exchange with the
    // neighbour, accumulate — structurally equal submissions, one graph
    let pipeline = || {
        Skel::map_costed(|x: &i64| (x * x, Work::flops(1)))
            .then(Skel::rotate(1))
            .then(Skel::scan(|a: &i64, b: &i64| a.wrapping_add(*b)))
    };

    // carol's plan is symbolic: lower → optimise (the cancelling
    // rotations vanish, the maps fuse) → raise, compiled once, cached
    let reg: &'static Registry = Box::leak(Box::new(Registry::standard()));
    let symbolic = Skel::map_sym("double", reg)
        .then(Skel::rotate(3))
        .then(Skel::rotate(-3))
        .then(Skel::map_sym("inc", reg));

    let input = |k: usize| ParArray::from_parts((0..p as i64).map(|i| i + k as i64).collect());

    let mut tickets: Vec<(&str, Ticket)> = Vec::new();
    for k in 0..requests {
        tickets.push(("alice", srv.submit(alice, pipeline(), input(k)).unwrap()));
        tickets.push(("bob", srv.submit(bob, pipeline(), input(k + 100)).unwrap()));
        tickets.push((
            "carol",
            srv.submit_optimized(carol, "", &symbolic, reg, input(k + 200))
                .unwrap(),
        ));
    }

    println!("request queues before service:");
    println!(
        "  {} requests pending over {} compiled plans",
        srv.pending_requests(),
        srv.cached_plans()
    );
    println!("  weighted fair shares of the {}-thread budget:", 4);
    for (t, share) in srv.shares() {
        println!("    {:<6} -> {} threads", srv.tenant_name(t), share);
    }

    srv.run_until_idle();

    println!("\nafter service:");
    let stats = srv.stats();
    println!(
        "  requests={} completed={} batches={}",
        stats.requests, stats.completed, stats.batches
    );
    println!(
        "  plan cache: {} misses (compiles), {} hits (reused graphs)",
        stats.cache_misses, stats.cache_hits
    );

    // each tenant's first request, with its private machine accounting
    for name in ["alice", "bob", "carol"] {
        let (_, ticket) = *tickets
            .iter()
            .find(|(n, _)| *n == name)
            .expect("tenant submitted");
        let (out, report) = srv.take(ticket).expect("request completed");
        println!(
            "  {:<6} first result: [{} ...]  report: {}",
            name,
            out.part(0),
            report
        );
    }
    println!(
        "  served per tenant: alice={} bob={} carol={}",
        srv.tenant_served(alice),
        srv.tenant_served(bob),
        srv.tenant_served(carol)
    );
}
