//! The streaming runtime: serve one `Skel` plan over an unbounded input
//! stream with bounded memory.
//!
//! A windowed-histogram service consumes an *infinite* iterator of
//! batches (it never materialises the stream), pushes each batch through
//! a persistent `partition → count+fragment → total_exchange → reduce →
//! gather` operator graph, and maintains a sliding window over the
//! results. Backpressure from the graph's bounded channels is what lets
//! the infinite producer run in constant memory; the peak in-flight gauge
//! printed at the end proves it.
//!
//! ```text
//! cargo run --release --example streaming [batches] [batch_len]
//! ```

use scl::prelude::*;
use scl_apps::stream_histogram::batch_histogram_plan;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |d: usize| args.next().and_then(|s| s.parse().ok()).unwrap_or(d);
    let batches = next(2_000);
    let batch_len = next(4_096);
    let (buckets, p, window) = (32usize, 8usize, 50usize);

    // an unbounded producer: batch k is generated on demand, never stored
    let mut state = 0x2545F4914F6CDD1Du64;
    let producer = (0..batches).map(move |_| {
        (0..batch_len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 1000
            })
            .collect::<Vec<u64>>()
    });

    // at least two farm replicas even on a one-core host, so the operator
    // graph (and its backpressure) is visible in the stats below
    let threads = scl::exec::host_threads().max(2);
    let policy = StreamPolicy::new(Machine::ap1000(p))
        .with_exec(ExecPolicy::Threads(threads))
        .with_capacity(8);
    let exec = StreamExec::new(batch_histogram_plan(buckets, p), policy);
    println!(
        "serving {batches} batches of {batch_len} values through {} farm stage(s), capacity 8",
        exec.farm_stages()
    );

    // sliding-window fold over the streamed histograms
    let mut iter = exec.run_stream(producer);
    let mut ring = std::collections::VecDeque::with_capacity(window);
    let mut acc = vec![0u64; buckets];
    let mut hottest = (0usize, 0u64);
    let mut n = 0usize;
    for h in iter.by_ref() {
        for (a, x) in acc.iter_mut().zip(&h) {
            *a += x;
        }
        ring.push_back(h);
        if ring.len() > window {
            for (a, x) in acc.iter_mut().zip(&ring.pop_front().unwrap()) {
                *a -= x;
            }
        }
        if let Some((bucket, &count)) = acc.iter().enumerate().max_by_key(|(_, c)| **c) {
            if count > hottest.1 {
                hottest = (bucket, count);
            }
        }
        n += 1;
    }
    let exec = iter.into_executor();

    let t = exec.throughput();
    println!(
        "processed {n} windows; hottest bucket ever: #{} with {} hits in one window",
        hottest.0, hottest.1
    );
    println!(
        "throughput: {:.0} batches/s ({:.2}s wall)",
        t.items_per_sec(),
        t.secs
    );
    println!(
        "peak in-flight batches: {} (memory stayed O(capacity × stages), stream was {batches} long)",
        exec.peak_in_flight()
    );
    println!("\nper-stage view (farms overlap items; barriers run in stream order):");
    for st in exec.stage_stats() {
        let kind = if st.farm { "farm" } else { "barrier" };
        println!(
            "  {:<28} {:<8} width {}/{}  items {:>6}  mean service {:>9.1}µs",
            st.label,
            kind,
            st.width,
            st.max_width,
            st.items,
            st.mean_service_secs * 1e6,
        );
    }
}
