//! `sclopt` — optimise a textual skeleton program from the command line.
//!
//! ```text
//! cargo run --release --bin sclopt -- "map(inc) . map(double) . rotate(2) . rotate(-2)" [n]
//! ```
//!
//! Parses the program (the grammar is the pretty-printer's output — see
//! `scl_transform::parse`), applies the paper's §4 laws to fixpoint, prints
//! the rewrite log and the estimated cost on an `n`-processor AP1000 model
//! before and after, and verifies meaning preservation on a sample input
//! through the reference interpreter.

use scl::prelude::*;
use scl_transform::shape_of;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(src) = args.next() else {
        eprintln!("usage: sclopt \"<program>\" [n-processors]");
        eprintln!("example: sclopt \"map(inc) . map(double) . rotate(2) . rotate(-2)\" 32");
        std::process::exit(2);
    };
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);

    let program = match scl_transform::parse(&src) {
        Ok(e) => e,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };
    let reg = Registry::standard();
    let params = CostParams::ap1000(n);

    println!("input:     {program}");
    match shape_of(&program, scl_transform::Shape::Arr) {
        Ok(shape) => println!("type:      Arr -> {shape:?}"),
        Err(e) => {
            eprintln!("type error: {e}");
            std::process::exit(1);
        }
    }
    let before = match estimate(&program, &reg, &params) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cost error: {e}");
            std::process::exit(1);
        }
    };

    let (optimized, log) = optimize(program.clone(), &reg);
    println!("optimized: {optimized}");
    let after = estimate(&optimized, &reg, &params).unwrap();
    println!("cost:      {before} -> {after} on {n} AP1000 cells");
    println!();
    if log.is_empty() {
        println!("(already in normal form — no law applies)");
    } else {
        println!("rewrites applied:");
        for step in &log {
            println!("  {:<18} {}", step.rule, step.after);
        }
    }

    // semantic check on a sample input (array programs only)
    if shape_of(&program, scl_transform::Shape::Arr).is_ok() {
        let input: Vec<i64> = (0..n as i64).collect();
        let a = eval(&program, &reg, Value::Arr(input.clone()));
        let b = eval(&optimized, &reg, Value::Arr(input));
        match (a, b) {
            (Ok(x), Ok(y)) if x == y => println!("\nsemantics preserved on a sample input ✓"),
            (Ok(_), Ok(_)) => {
                eprintln!("\nBUG: optimization changed semantics!");
                std::process::exit(1);
            }
            (Err(e), _) | (_, Err(e)) => println!("\n(interpreter skipped: {e})"),
        }
    }
}
