#![warn(missing_docs)]
//! # scl — Parallel Skeletons for Structured Composition
//!
//! The façade crate of the `scl-rs` workspace: a Rust reproduction of
//! Darlington, Guo, To & Yang, *"Parallel Skeletons for Structured
//! Composition"* (PPoPP 1995). It re-exports the whole stack:
//!
//! * [`machine`] (`scl-machine`) — the simulated AP1000-like multicomputer:
//!   topologies, cost models, virtual clocks, collectives, traces.
//! * [`exec`] (`scl-exec`) — the from-scratch threaded execution substrate.
//! * [`core`] (`scl-core`) — SCL itself: configuration, elementary,
//!   communication and computational skeletons over distributed arrays,
//!   plus the first-class [`Skel`](scl_core::Skel) plan API (write a
//!   skeleton program once, run it eagerly or optimise-then-execute).
//! * [`transform`] (`scl-transform`) — the §4 transformation engine: map
//!   fusion, map distribution, communication algebra, flattening, and a
//!   cost-directed optimiser.
//! * [`stream`] (`scl-stream`) — the streaming runtime: compile a plan
//!   into a persistent pipeline/farm operator graph and serve unbounded
//!   input through it with backpressure and autonomic farm widths.
//! * [`serve`] (`scl-serve`) — the multi-tenant plan service: a
//!   fingerprint-keyed plan cache over compiled stream graphs, a shard
//!   scheduler splitting one host thread budget into weighted fair
//!   tenant shares, and request batching — shared infrastructure with
//!   per-request machine accounting.
//! * [`apps`] (`scl-apps`) — Gauss–Jordan, hyperquicksort (nested and
//!   flattened), PSRS, Cannon, Jacobi, histogram (batch and streaming).
//!
//! See `examples/quickstart.rs` for a guided tour, `examples/streaming.rs`
//! for the streaming runtime, `examples/serving.rs` for the multi-tenant
//! service, and the `scl-bench` crate for the binaries regenerating the
//! paper's Table 1 and Figure 3. `docs/ARCHITECTURE.md` maps the paper's
//! sections onto this crate graph, with the life of a request end to end.

pub use scl_apps as apps;
pub use scl_core as core;
pub use scl_exec as exec;
pub use scl_machine as machine;
pub use scl_serve as serve;
pub use scl_stream as stream;
pub use scl_transform as transform;

/// One prelude for the whole stack.
pub mod prelude {
    pub use scl_core::prelude::*;
    pub use scl_core::Skel;
    pub use scl_serve::{Serve, ServePolicy};
    pub use scl_stream::{StreamExec, StreamPolicy};
    pub use scl_transform::prelude::{
        estimate, eval, optimize, optimize_costed, CostParams, Expr, FnRef, IdxRef, Registry, Value,
    };
}
