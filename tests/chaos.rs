//! Chaos differential suite (tentpole): a tenant running a crashing or
//! stalling plan must be *invisible* to its co-tenants. Tenant A drives
//! seeded faults from the `scl-testkit` [`FaultPlan`] harness — stage
//! panics inside farm workers, barrier panics at sequential hops,
//! artificial delays, and lane stalls — while tenant B's outputs **and**
//! per-request `MachineReport`s must stay bit-for-bit equal to solo
//! runs, under every execution policy and both link flavors (lock-free
//! rings and locked queues). Plus the recovery contract: a crashed
//! plan's next submission rebuilds the graph and succeeds.
//!
//! The CI harness pins the policy through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`) and the fault seed through
//! `SCL_FAULT_SEED`; unset, a fixed seed and every policy run
//! in-process. Every fault decision is a pure function of
//! `(seed, site, value)`, so any failure reproduces exactly by
//! re-exporting the seed the suite prints on entry.

use scl::prelude::*;
use scl_core::{ParArray, RequestError};
use scl_machine::MachineReport;
use scl_serve::{Serve, ServePolicy, Ticket};
use scl_testkit::dag::{join_concat, split_half};
use scl_testkit::FaultPlan;

/// The policy matrix, overridable by the CI harness.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

fn unit_machine(n: usize) -> Machine {
    Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
}

fn fault() -> FaultPlan {
    let f = FaultPlan::from_env(0xC4A0_5EED);
    eprintln!("chaos suite: SCL_FAULT_SEED={:#x}", f.seed());
    f
}

/// Tenant B's plan: deterministic, healthy, closure-built so the solo
/// baseline reconstructs the identical graph.
fn victim_plan() -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(|x: &i64| x.wrapping_mul(3))
        .then(Skel::rotate(1))
        .then(Skel::map_costed(|x: &i64| {
            (x.wrapping_add(1), Work::flops(2))
        }))
}

fn victim_input(k: i64) -> ParArray<i64> {
    ParArray::from_parts((k..k + 8).collect::<Vec<i64>>())
}

/// Tenant A's crashing plan: the seeded `stage` site panics inside a
/// farm worker for roughly one value in three.
fn crashing_plan(f: FaultPlan) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(move |x: &i64| {
        f.maybe_panic("stage", *x, 3);
        x.wrapping_mul(2)
    })
    .then(Skel::rotate(1))
}

/// Tenant A's turbulent plan: seeded delays perturb worker interleaving
/// and seeded stalls wedge one lane at a time — timing chaos only, the
/// answer must stay exact.
fn turbulent_plan(f: FaultPlan) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(move |x: &i64| {
        f.maybe_delay("delay", *x, 2, 300);
        x.wrapping_sub(5)
    })
    .then(Skel::map_costed(move |x: &i64| {
        f.maybe_stall("stall", *x, 7, 2);
        (x.wrapping_mul(3), Work::flops(1))
    }))
}

/// Tenant A's barrier-crashing plan: the seeded `barrier` site panics
/// inside a sequential hop (the other poisoning path).
fn barrier_crashing_plan(f: FaultPlan) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    Skel::map(|x: &i64| x.wrapping_add(1)).then(Skel::barrier(
        "chaos-barrier",
        move |_scl: &mut Scl, a: ParArray<i64>| {
            for x in a.parts() {
                f.maybe_panic("barrier", *x, 2);
            }
            a
        },
    ))
}

/// Tenant A's branch-crashing plan: the seeded `arm` site panics inside
/// the **left** arm of a `pair` while the right arm stays healthy — the
/// fault must resolve typed without stranding the sibling arm.
fn arm_crashing_plan(f: FaultPlan) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    let left = Skel::map(move |x: &i64| {
        f.maybe_panic("arm", *x, 2);
        x.wrapping_mul(2)
    });
    let right = Skel::map(|x: &i64| x.wrapping_add(9));
    split_half().then(left.pair(right)).then(join_concat())
}

/// An input guaranteed (by seed-deterministic search) to trip `site`.
fn hot_input(f: FaultPlan, site: &str, one_in: u64) -> ParArray<i64> {
    let hot = (0..100_000)
        .find(|&v| f.fires(site, v, one_in))
        .expect("some value trips the fault");
    ParArray::from_parts(vec![hot.wrapping_sub(1), hot, hot.wrapping_add(1), hot])
}

/// An input guaranteed to *miss* `site` for every element.
fn cold_input(f: FaultPlan, site: &str, one_in: u64) -> ParArray<i64> {
    let spared: Vec<i64> = (0..100_000)
        .filter(|&v| !f.fires(site, v, one_in))
        .take(8)
        .collect();
    assert_eq!(spared.len(), 8, "enough values dodge the fault");
    ParArray::from_parts(spared)
}

#[test]
fn co_tenant_outputs_and_reports_survive_chaos_bit_for_bit() {
    let f = fault();
    for policy in policies() {
        for locked in [false, true] {
            let machine = unit_machine(8);
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
                ServePolicy::new(machine.clone())
                    .with_exec(policy)
                    .with_locked_links(locked)
                    .with_quarantine_after(1_000_000), // keep the crashes coming
            );
            let a = srv.add_tenant("chaos");
            let b = srv.add_tenant("victim");

            // interleaved rounds: A keeps crashing one plan and churning a
            // turbulent one while B streams healthy work through the same
            // shared service
            let mut crashers: Vec<Ticket> = Vec::new();
            let mut turbulent: Vec<(Ticket, ParArray<i64>)> = Vec::new();
            let mut victims: Vec<(Ticket, i64)> = Vec::new();
            for round in 0..4i64 {
                crashers.push(
                    srv.submit_keyed(a, "crash", crashing_plan(f), hot_input(f, "stage", 3))
                        .unwrap(),
                );
                let tin = victim_input(1_000 + round);
                turbulent.push((
                    srv.submit_keyed(a, "turb", turbulent_plan(f), tin.clone())
                        .unwrap(),
                    tin,
                ));
                victims.push((
                    srv.submit_keyed(b, "victim", victim_plan(), victim_input(round))
                        .unwrap(),
                    round,
                ));
            }
            srv.run_until_idle();

            // every crashing submission resolved to a typed fault — none
            // lost, none unwound through the service
            for tk in crashers {
                let err = srv.outcome(tk).expect("resolved").unwrap_err();
                assert!(err.is_fault(), "expected a fault, got {err}");
                assert!(
                    err.to_string().contains("injected fault at `stage`"),
                    "{err}"
                );
            }
            assert!(
                srv.stats().panics >= 1,
                "the seeded faults actually fired ({policy:?})"
            );

            // A's turbulent plan: timing chaos only — answers stay exact
            let mut scl = Scl::new(machine.clone()).with_policy(policy);
            for (i, (tk, tin)) in turbulent.into_iter().enumerate() {
                let (out, report) = srv
                    .outcome(tk)
                    .expect("resolved")
                    .expect("turbulence is not failure");
                scl.reset();
                let expect = turbulent_plan(f).run(&mut scl, tin);
                assert_eq!(out, expect, "turbulent {i} ({policy:?}, locked={locked})");
                assert_eq!(report, scl.machine.report(), "turbulent {i} report");
            }

            // tenant B: outputs and reports bit-for-bit equal to solo runs
            for (tk, round) in victims {
                let (out, report) = srv.outcome(tk).expect("resolved").expect("victim unharmed");
                scl.reset();
                let expect = victim_plan().run(&mut scl, victim_input(round));
                assert_eq!(
                    out, expect,
                    "victim round {round} ({policy:?}, locked={locked})"
                );
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "victim round {round} report ({policy:?}, locked={locked})"
                );
            }

            // and the service is still alive for everyone
            let tk = srv
                .submit_keyed(b, "victim", victim_plan(), victim_input(99))
                .unwrap();
            srv.run_until_idle();
            assert!(
                srv.outcome(tk).unwrap().is_ok(),
                "service survived the chaos"
            );
        }
    }
}

#[test]
fn crashed_plans_rebuild_and_succeed_on_resubmission() {
    let f = fault();
    for policy in policies() {
        for locked in [false, true] {
            let machine = unit_machine(8);
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
                ServePolicy::new(machine.clone())
                    .with_exec(policy)
                    .with_locked_links(locked),
            );
            let t = srv.add_tenant("t");

            // crash it
            let doomed = srv
                .submit_keyed(t, "flaky", crashing_plan(f), hot_input(f, "stage", 3))
                .unwrap();
            srv.run_until_idle();
            assert!(srv.outcome(doomed).unwrap().is_err());

            // resubmit with spared values: the graph rebuilds from the
            // cached plan and the answer matches a solo run exactly
            let clean = cold_input(f, "stage", 3);
            let retry = srv
                .submit_keyed(t, "flaky", crashing_plan(f), clean.clone())
                .unwrap();
            srv.run_until_idle();
            let (out, report) = srv.outcome(retry).unwrap().expect("rebuilt and ran");
            let mut scl = Scl::new(machine.clone()).with_policy(policy);
            let expect = crashing_plan(f).run(&mut scl, clean);
            assert_eq!(out, expect, "({policy:?}, locked={locked})");
            assert_eq!(
                report,
                scl.machine.report(),
                "({policy:?}, locked={locked})"
            );
            assert_eq!(srv.stats().rebuilds, 1, "one teardown, one rebuild");
        }
    }
}

/// A panic in one `pair` arm resolves as a typed fault; the sibling arm
/// is not stranded (a cold input through the same keyed plan still
/// completes, bit-for-bit with a solo run) and the co-tenant's request
/// stays untouched.
#[test]
fn branch_arm_panics_resolve_typed_and_spare_sibling_and_co_tenant() {
    let f = fault();
    for policy in policies() {
        let machine = unit_machine(8);
        let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
            ServePolicy::new(machine.clone())
                .with_exec(policy)
                .with_quarantine_after(1_000_000), // the retry must run
        );
        let a = srv.add_tenant("chaos");
        let b = srv.add_tenant("victim");

        // the split sends the first half of the parts into the left arm,
        // so an all-hot input is guaranteed to trip it
        let doomed = srv
            .submit_keyed(a, "arm", arm_crashing_plan(f), hot_input(f, "arm", 2))
            .unwrap();
        let safe = srv
            .submit_keyed(b, "victim", victim_plan(), victim_input(11))
            .unwrap();
        let retry_input = cold_input(f, "arm", 2);
        let retry = srv
            .submit_keyed(a, "arm", arm_crashing_plan(f), retry_input.clone())
            .unwrap();
        srv.run_until_idle();

        let err = srv.outcome(doomed).expect("resolved").unwrap_err();
        assert!(
            err.is_fault(),
            "expected a typed fault, got {err} ({policy:?})"
        );
        assert!(
            err.to_string().contains("injected fault at `arm`"),
            "fault site lost: {err} ({policy:?})"
        );

        // sibling arm / shared graph not stranded: the cold retry of the
        // same keyed plan completes and matches a solo run exactly
        let (out, report): (ParArray<i64>, MachineReport) =
            srv.outcome(retry).unwrap().expect("cold retry completes");
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        let expect = arm_crashing_plan(f).run(&mut scl, retry_input);
        assert_eq!(out, expect, "retry output ({policy:?})");
        assert_eq!(report, scl.machine.report(), "retry report ({policy:?})");

        // co-tenant unharmed
        let (out, report): (ParArray<i64>, MachineReport) =
            srv.outcome(safe).unwrap().expect("victim unharmed");
        scl.reset();
        let expect = victim_plan().run(&mut scl, victim_input(11));
        assert_eq!(out, expect, "victim output ({policy:?})");
        assert_eq!(report, scl.machine.report(), "victim report ({policy:?})");
    }
}

#[test]
fn barrier_panics_resolve_typed_and_spare_the_co_tenant() {
    let f = fault();
    for policy in policies() {
        let machine = unit_machine(8);
        let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let a = srv.add_tenant("chaos");
        let b = srv.add_tenant("victim");

        // an input whose *mapped* values (x+1) trip the barrier site
        let hot = (0..100_000)
            .find(|&v| f.fires("barrier", v + 1, 2))
            .expect("some value trips the barrier fault");
        let doomed = srv
            .submit_keyed(
                a,
                "bar",
                barrier_crashing_plan(f),
                ParArray::from_parts(vec![hot; 4]),
            )
            .unwrap();
        let safe = srv
            .submit_keyed(b, "victim", victim_plan(), victim_input(7))
            .unwrap();
        srv.run_until_idle();

        match srv.outcome(doomed).unwrap() {
            Err(RequestError::BarrierPanic { stage, message }) => {
                assert_eq!(stage, "chaos-barrier", "({policy:?})");
                assert!(message.contains("injected fault at `barrier`"), "{message}");
            }
            other => panic!("expected a barrier panic, got {other:?} ({policy:?})"),
        }
        let (out, report): (ParArray<i64>, MachineReport) =
            srv.outcome(safe).unwrap().expect("victim unharmed");
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        let expect = victim_plan().run(&mut scl, victim_input(7));
        assert_eq!(out, expect, "({policy:?})");
        assert_eq!(report, scl.machine.report(), "({policy:?})");
    }
}
