//! Cross-crate integration: the transformation engine's programs executed
//! through the real skeleton runtime, optimised and unoptimised, must
//! agree with each other and with the reference interpreter — and the
//! optimised program must charge the simulated machine no more virtual
//! time than the original.

use scl::prelude::*;

/// Execute a (flat, array→array) IR program through the *runtime* skeleton
/// layer on a real `Scl` context, one scalar per processor — by raising it
/// into a `Skel` plan (the plan API's `from_expr` back-end).
fn run_on_scl(e: &Expr, reg: &Registry, scl: &mut Scl, input: &[i64]) -> Vec<i64> {
    let arr = scl_core::ParArray::from_parts(input.to_vec());
    let plan = Skel::from_expr(e, reg).expect("program is in the array→array fragment");
    plan.run(scl, arr).to_vec()
}

fn program() -> Expr {
    Expr::pipeline(vec![
        Expr::Map(FnRef::named("inc")),
        Expr::Rotate(2),
        Expr::Map(FnRef::named("double")),
        Expr::Rotate(-2),
        Expr::Fetch(IdxRef::named("succ")),
        Expr::Fetch(IdxRef::named("xor1")),
        Expr::Map(FnRef::named("square")),
        Expr::Map(FnRef::named("neg")),
    ])
}

#[test]
fn optimized_program_agrees_with_original_on_the_runtime() {
    let reg = Registry::standard();
    let input: Vec<i64> = (0..16).map(|i| i * 3 - 7).collect();

    let original = program();
    let (optimized, log) = optimize(original.clone(), &reg);
    assert!(!log.is_empty(), "the program has fusable stages");

    let mut scl1 = Scl::ap1000(16);
    let out1 = run_on_scl(&original, &reg, &mut scl1, &input);
    let mut scl2 = Scl::ap1000(16);
    let out2 = run_on_scl(&optimized, &reg, &mut scl2, &input);

    assert_eq!(out1, out2, "optimization changed runtime semantics");

    // the interpreter agrees with both
    let interp = eval(&original, &reg, Value::Arr(input)).unwrap();
    assert_eq!(Value::Arr(out1), interp);

    // and the optimized program is cheaper in virtual time
    assert!(
        scl2.makespan() <= scl1.makespan(),
        "optimized {} vs original {}",
        scl2.makespan(),
        scl1.makespan()
    );
    // fewer messages, too (fetch fusion halves the permutes; rotates cancel)
    assert!(scl2.machine.metrics.messages < scl1.machine.metrics.messages);
}

#[test]
fn static_estimate_ranks_like_the_simulator() {
    // The §4 cost estimator and the runtime simulator need not agree on
    // absolute numbers, but they must agree on *which program is cheaper* —
    // that's what makes cost-directed rewriting trustworthy.
    let reg = Registry::standard();
    let input: Vec<i64> = (0..32).collect();
    let params = CostParams::ap1000(32);

    let candidates = vec![
        program(),
        optimize(program(), &reg).0,
        Expr::pipeline(vec![Expr::Map(FnRef::named("heavy")), Expr::Rotate(1)]),
        Expr::pipeline(vec![Expr::Fetch(IdxRef::named("succ"))]),
    ];
    let mut ranked: Vec<(f64, f64)> = Vec::new();
    for e in &candidates {
        let est = estimate(e, &reg, &params).unwrap().as_secs();
        let mut scl = Scl::ap1000(32);
        let _ = run_on_scl(e, &reg, &mut scl, &input);
        ranked.push((est, scl.makespan().as_secs()));
    }
    // pairwise order agreement on clearly-separated pairs (>20% apart)
    for i in 0..ranked.len() {
        for j in 0..ranked.len() {
            let (ei, si) = ranked[i];
            let (ej, sj) = ranked[j];
            if ei < ej * 0.8 {
                assert!(
                    si <= sj * 1.05,
                    "estimator said {i} << {j}, simulator disagrees: {si} vs {sj}"
                );
            }
        }
    }
}

#[test]
fn whole_stack_smoke() {
    // partition (core) -> sort kernels (apps) -> machine report (machine)
    // -> verify with transform's interpreter on a trivial identity program.
    let data = scl::apps::workloads::uniform_keys(5_000, 123);
    let mut scl = Scl::hypercube(8, CostModel::ap1000());
    let sorted = scl::apps::hyperquicksort::hyperquicksort_flat(&mut scl, &data, 3);
    let mut expect = data.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect);

    let report = scl.machine.report();
    assert_eq!(report.procs, 8);
    assert!(report.makespan.as_secs() > 0.0);
    assert!(report.metrics.messages > 0);

    let reg = Registry::standard();
    let id = Expr::Id;
    assert_eq!(
        eval(&id, &reg, Value::Arr(sorted.clone())).unwrap(),
        Value::Arr(sorted)
    );
}
