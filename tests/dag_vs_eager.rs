//! Differential suite for plan **DAGs**: randomized graphs built from
//! `pair` / `fanout` / `choice` / `dac` (nested around the usual symbolic
//! stages) must agree bit-for-bit between eager `run`, branch-parallel
//! `run_fused`, and `run_optimized` — under sequential, threaded, and
//! cost-driven policies — and the fused machine report must not depend on
//! the policy that produced it.
//!
//! The CI harness pins the policy set through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`) and sweeps the generator seed through
//! `SCL_DAG_SEED`, mirroring the chaos suite's `SCL_FAULT_SEED`.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use scl::prelude::*;
use scl_core::ParArray;
use scl_testkit::cases;
use scl_testkit::dag::{arb_dag, arb_dag_input, env_seed, join_concat, split_half, DagStats};

/// The policy matrix, overridable by the CI harness. An unparseable
/// `SCL_EXEC_POLICY` fails the suite instead of silently testing the
/// wrong thing.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

fn dag_seed() -> u64 {
    env_seed("SCL_DAG_SEED", 0xDA60)
}

/// The tentpole invariant: 112 seeded DAGs per policy (each nesting
/// branches up to three levels deep) agree across all three executors,
/// and the fused clock stays within float-association noise of the eager
/// one. Coverage is asserted, not assumed: across the sweep every
/// combinator family must appear and nesting must actually reach depth 3.
#[test]
fn randomized_dags_agree_three_ways() {
    let reg = Registry::standard();
    let mut stats = DagStats::default();
    for policy in policies() {
        cases(112, dag_seed(), |rng| {
            let input = arb_dag_input(rng);
            let n = input.len();
            let plan = arb_dag(rng, &reg, n, 3, &mut stats);
            assert!(plan.fusable(), "every generated DAG has a fused form");

            let mut eager_ctx = Scl::ap1000(n);
            let eager = plan.run(&mut eager_ctx, input.clone());

            let mut fused_ctx = Scl::ap1000(n).with_policy(policy);
            let fused = fused_ctx.run_fused(&plan, input.clone()).unwrap();

            let mut opt_ctx = Scl::ap1000(n).with_policy(policy);
            let (optimized, _log) = opt_ctx.run_optimized(&plan, &reg, input);

            assert_eq!(eager.to_vec(), fused.to_vec(), "policy {policy:?}");
            assert_eq!(eager.to_vec(), optimized.to_vec(), "policy {policy:?}");

            // Charging agrees too: branch arms replay the same costed
            // work in the same order the eager closures charge it.
            // (Approximate only in the last ulp: a fused segment charges
            // one summed Work per part, so clock additions associate
            // differently.)
            let (te, tf) = (
                eager_ctx.makespan().as_secs(),
                fused_ctx.makespan().as_secs(),
            );
            assert!(
                (te - tf).abs() <= 1e-9 * te.abs().max(1.0),
                "makespan diverged: eager {te} vs fused {tf} ({policy:?})"
            );
        });
    }
    assert!(stats.covers_all(), "coverage hole in the sweep: {stats:?}");
    assert!(stats.deepest >= 3, "never nested 3 deep: {stats:?}");
}

/// The machine report of a fused DAG run is a pure function of the plan
/// and input — scheduling policy must not leak into it. (Pinned CI runs
/// see a single policy and degrade to a smoke check; the unpinned suite
/// compares all three pairwise.)
#[test]
fn fused_dag_reports_are_policy_independent() {
    let reg = Registry::standard();
    cases(24, dag_seed() ^ 0x1, |rng| {
        let input = arb_dag_input(rng);
        let n = input.len();
        let mut stats = DagStats::default();
        let plan = arb_dag(rng, &reg, n, 3, &mut stats);

        let mut runs = policies().into_iter().map(|policy| {
            let mut ctx = Scl::ap1000(n).with_policy(policy);
            let out = ctx.run_fused(&plan, input.clone()).unwrap();
            (policy, out.to_vec(), ctx.machine.report())
        });
        let (first_policy, first_out, first_report) = runs.next().unwrap();
        for (policy, out, report) in runs {
            assert_eq!(out, first_out, "{first_policy:?} vs {policy:?}");
            assert_eq!(
                report, first_report,
                "fused report drifted between {first_policy:?} and {policy:?}"
            );
        }
    });
}

/// Rendezvous proof that independent `pair` arms really run concurrently
/// on distinct workers: each arm publishes a flag and waits (bounded) for
/// the other's. Under `Threads(2)` with one part per arm the split
/// segment dispatches both arms in a single pool call, so the handshake
/// completes; a sequential scheduler could never satisfy the left arm's
/// wait. Retries absorb a temporarily saturated shared pool.
#[test]
fn pair_arms_run_concurrently_on_distinct_workers() {
    const ATTEMPTS: usize = 4;
    const WAIT: Duration = Duration::from_millis(2500);

    for attempt in 0..ATTEMPTS {
        let left_up = Arc::new(AtomicBool::new(false));
        let right_up = Arc::new(AtomicBool::new(false));
        let met = Arc::new(AtomicBool::new(true));
        let tids: Arc<Mutex<HashSet<ThreadId>>> = Arc::default();

        let arm = |mine: Arc<AtomicBool>, theirs: Arc<AtomicBool>| {
            let met = Arc::clone(&met);
            let tids = Arc::clone(&tids);
            move |x: &i64| {
                tids.lock().unwrap().insert(std::thread::current().id());
                mine.store(true, Ordering::SeqCst);
                let deadline = Instant::now() + WAIT;
                while !theirs.load(Ordering::SeqCst) {
                    if Instant::now() > deadline {
                        met.store(false, Ordering::SeqCst);
                        break;
                    }
                    std::thread::yield_now();
                }
                *x
            }
        };
        let left = Skel::map(arm(Arc::clone(&left_up), Arc::clone(&right_up)));
        let right = Skel::map(arm(Arc::clone(&right_up), Arc::clone(&left_up)));
        let plan = split_half().then(left.pair(right)).then(join_concat());

        let mut ctx = Scl::ap1000(2).with_policy(ExecPolicy::Threads(2));
        let input = ParArray::from_parts(vec![10, 20]);
        let out = ctx.run_fused(&plan, input).unwrap();
        assert_eq!(out.to_vec(), vec![10, 20]);

        let distinct = tids.lock().unwrap().len();
        if met.load(Ordering::SeqCst) && distinct >= 2 {
            return; // both arms saw each other in flight, on distinct threads
        }
        assert!(
            attempt + 1 < ATTEMPTS,
            "pair arms never rendezvoused: met={} distinct_workers={}",
            met.load(Ordering::SeqCst),
            distinct
        );
    }
}

/// Structural fingerprints hash arm *topology*: swapping arms, changing
/// the branch kind, or deepening one arm all change the fingerprint,
/// while rebuilding the identical graph (fresh closures and all)
/// collides.
#[test]
fn dag_fingerprints_hash_arm_topology() {
    let reg = Registry::standard();
    let inc = || Skel::map_sym("inc", &reg);
    let dbl = || Skel::map_sym("double", &reg);

    let fp = |plan: &Skel<ParArray<i64>, ParArray<i64>>| {
        plan.fingerprint().expect("DAG plans are fusable")
    };

    // pair(f, g) != pair(g, f)
    fn pf<'r>(
        l: Skel<'r, ParArray<i64>, ParArray<i64>>,
        r: Skel<'r, ParArray<i64>, ParArray<i64>>,
    ) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
        split_half().then(l.pair(r)).then(join_concat())
    }
    let pair_fg = pf(inc(), dbl());
    let pair_gf = pf(dbl(), inc());
    assert_ne!(fp(&pair_fg), fp(&pair_gf), "swapped pair arms must differ");

    // fanout(f, g) != fanout(g, f)
    let fan_fg = Skel::fanout_sym(inc(), dbl(), "add", &reg);
    let fan_gf = Skel::fanout_sym(dbl(), inc(), "add", &reg);
    assert_ne!(fp(&fan_fg), fp(&fan_gf), "swapped fanout arms must differ");

    // same arms, different branch kind
    let choice_fg = Skel::choice_sym("inc", inc(), dbl(), &reg);
    assert_ne!(
        fp(&choice_fg),
        fp(&Skel::fanout_sym(inc(), dbl(), "add", &reg)),
        "choice and fanout of the same arms must differ"
    );

    // deepening one arm changes the topology hash
    let shallow = Skel::choice_sym("inc", inc(), dbl(), &reg);
    let deep = Skel::choice_sym("inc", inc().then(inc()), dbl(), &reg);
    assert_ne!(fp(&shallow), fp(&deep), "arm depth must be hashed");

    // identical construction (fresh closures) collides
    assert_eq!(fp(&pair_fg), fp(&pf(inc(), dbl())));
    assert_eq!(
        fp(&choice_fg),
        fp(&Skel::choice_sym("inc", inc(), dbl(), &reg))
    );
}

/// Generator determinism holds at the fingerprint level end-to-end: the
/// same seed rebuilds a structurally identical DAG (the serve cache key
/// for it), different seeds essentially never collide.
#[test]
fn generated_dags_fingerprint_deterministically() {
    let reg = Registry::standard();
    let mut fps = HashSet::new();
    cases(32, dag_seed() ^ 0x2, |rng| {
        let n = arb_dag_input(rng).len();
        let mut twin = rng.clone();
        let mut stats = DagStats::default();
        let a = arb_dag(rng, &reg, n, 3, &mut stats);
        let mut twin_stats = DagStats::default();
        let b = arb_dag(&mut twin, &reg, n, 3, &mut twin_stats);
        let (fa, fb) = (a.fingerprint().unwrap(), b.fingerprint().unwrap());
        assert_eq!(fa, fb, "same seed must rebuild the same DAG");
        assert_eq!(stats, twin_stats);
        fps.insert(fa);
    });
    assert!(
        fps.len() > 16,
        "seeded DAGs collapsed to {} shapes",
        fps.len()
    );
}
