//! Figure 1 of the paper as an executable test: the data-distribution
//! model — `partition` divides arrays into distributed components, `align`
//! forms a configuration of co-located tuples, and the configuration maps
//! onto virtual processors. Also covers the `distribution` /
//! `redistribution` skeletons the figure motivates.

use scl::prelude::*;
use scl_core::{align, unalign};

#[test]
fn partition_then_align_builds_a_configuration() {
    let mut scl = Scl::ap1000(4);

    // Two arrays with *different* distribution strategies, as in the
    // figure: A row-block style (block) and B cyclic.
    let a: Vec<i64> = (0..16).collect();
    let b: Vec<i64> = (100..116).collect();
    let da = scl.partition(Pattern::Block(4), &a);
    let db = scl.partition(Pattern::Cyclic(4), &b);

    // align pairs corresponding sub-arrays: a ParArray of tuples.
    let cfg = align(da, db);
    assert_eq!(cfg.len(), 4);

    // "Objects in a tuple of the configuration are regarded as being
    // allocated to the same processor."
    for (proc, (pa, pb)) in cfg.iter() {
        assert_eq!(pa.len(), 4);
        assert_eq!(pb.len(), 4);
        // block part i holds a[4i..4i+4]; cyclic part i holds b[i::4]
        assert_eq!(pa[0], 4 * *proc as i64);
        assert_eq!(pb[0], 100 + *proc as i64);
    }
}

#[test]
fn distribution_skeleton_is_partition_plus_align() {
    let mut scl = Scl::ap1000(4);
    let a: Vec<i64> = (0..12).collect();
    let b: Vec<i64> = (0..12).map(|x| x * 10).collect();

    let via_skeleton = scl.distribution2(Pattern::Block(4), &a, Pattern::Block(4), &b);

    let mut scl2 = Scl::ap1000(4);
    let da = scl2.partition(Pattern::Block(4), &a);
    let db = scl2.partition(Pattern::Block(4), &b);
    let manual = align(da, db);

    assert_eq!(via_skeleton, manual);
}

#[test]
fn redistribution_moves_one_component() {
    let mut scl = Scl::ap1000(4);
    let cfg = scl.distribution2(
        Pattern::Block(4),
        &(0..8).collect::<Vec<i64>>(),
        Pattern::Block(4),
        &(0..8).collect::<Vec<i64>>(),
    );
    // rotate only the second component — the paper's
    // redistribution [id, rotate 1] C
    let out = scl.redistribution2(cfg, |_, a| a, |scl, b| scl.rotate(1, &b));
    let (da, db) = unalign(out);
    assert_eq!(*da.part(0), vec![0, 1]); // untouched
    assert_eq!(*db.part(0), vec![2, 3]); // rotated by one part
    assert_eq!(*db.part(3), vec![0, 1]); // wrapped around
}

#[test]
fn two_dimensional_configurations_follow_hpf_patterns() {
    let mut scl = Scl::ap1000(6);
    let m = Matrix::from_fn(6, 6, |r, c| (r * 6 + c) as i64);

    // the paper lists row_block, col_block, row_col_block, row_cyclic,
    // col_cyclic as built-in strategies
    let rb = scl.partition2(Pattern::RowBlock(3), &m);
    assert_eq!(rb.part(1).row(0), m.row(2));

    let cb = scl.partition2(Pattern::ColBlock(3), &m);
    assert_eq!(cb.part(2).col(0), m.col(4));

    let grid = scl.partition2(Pattern::Grid { pr: 2, pc: 3 }, &m);
    assert_eq!(grid.shape().dims2(), (2, 3));
    assert_eq!(*grid.part2(1, 1).get(0, 0), *m.get(3, 2));

    // and gather inverts each
    assert_eq!(scl.gather2(Pattern::RowBlock(3), &rb), m);
    assert_eq!(scl.gather2(Pattern::ColBlock(3), &cb), m);
    assert_eq!(scl.gather2(Pattern::Grid { pr: 2, pc: 3 }, &grid), m);
}

#[test]
fn nested_configurations_model_processor_groups() {
    let mut scl = Scl::ap1000(8);
    let a: Vec<i64> = (0..8).collect();
    let da = scl.partition(Pattern::Block(8), &a);

    // split: a ParArray of ParArrays — "an element of a nested array
    // corresponds to the concept of a group in MPI"
    let groups = scl.split(Pattern::Block(2), da);
    assert_eq!(groups.len(), 2);
    assert_eq!(groups.part(0).procs(), &[0, 1, 2, 3]);
    assert_eq!(groups.part(1).procs(), &[4, 5, 6, 7]);

    // group-local collectives only touch the group's clocks
    let folded = scl.map_groups(groups, &mut |scl, g| {
        let sum = scl.fold(&g, |x, y| {
            let mut v = x.clone();
            v.extend_from_slice(y);
            v
        });
        ParArray::with_placement(vec![sum], vec![g.procs()[0]])
    });
    let flat = scl.combine(folded);
    assert_eq!(flat.part(0), &vec![0, 1, 2, 3]);
    assert_eq!(flat.part(1), &vec![4, 5, 6, 7]);
}
