//! Figure 2 of the paper as an executable test: the stage-by-stage
//! hyperquicksort walk-through on a 2-dimensional hypercube (4 processors,
//! 32 values, initially all on processor 0).
//!
//! The OCR of the paper garbles the literal values, but every structural
//! claim of stages (a)–(h) is testable:
//!   (a) all values start on p0;
//!   (b) the list is distributed evenly;
//!   (c) each processor's data is locally sorted after SEQ_QUICKSORT;
//!   (d)/(e) after the first pivot/exchange/merge, the lower 1-cube holds
//!           values ≤ pivot, the upper holds values > pivot;
//!   (f)/(g) after the second, every processor-pair boundary is ordered;
//!   (h) the gathered result on p0 is the fully sorted list.

use scl::apps::hyperquicksort::{globally_sorted, hqs_step};
use scl::apps::seqkit::{is_sorted, midvalue, seq_quicksort};
use scl::apps::workloads::uniform_keys;
use scl::prelude::*;

fn multiset(v: &[i64]) -> Vec<i64> {
    let mut s = v.to_vec();
    s.sort_unstable();
    s
}

#[test]
fn figure2_stage_by_stage() {
    // (a) 32 values "initially located on processor 0"
    let values = uniform_keys(32, 2); // 2-dim cube, seed 2
    let mut scl = Scl::hypercube(4, CostModel::ap1000());

    // (b) "the first step distributes the list to be sorted evenly"
    let da = scl.partition(Pattern::Block(4), &values);
    assert_eq!(da.len(), 4);
    for part in da.parts() {
        assert_eq!(part.len(), 8);
    }
    assert_eq!(scl.machine.metrics.gathers, 1, "one scatter collective");

    // (c) "sequential quicksort is performed in parallel on each processor"
    let da = scl.map_costed(&da, |p| {
        let mut v = p.clone();
        let w = seq_quicksort(&mut v);
        (v, w)
    });
    for part in da.parts() {
        assert!(is_sorted(part));
    }

    // first iteration: pivot = median of p0 (the paper's node 0 MIDVALUE),
    // broadcast, split, exchange with the partner across the top dimension,
    // merge.
    let (pivot, _) = midvalue(da.part(0));
    let after1 = hqs_step(&mut scl, da, 4);

    // (d)/(e): lower subcube (p0, p1) ≤ pivot < upper subcube (p2, p3)
    for part in &after1.parts()[..2] {
        assert!(part.iter().all(|&x| x <= pivot), "lower cube leak");
        assert!(is_sorted(part));
    }
    for part in &after1.parts()[2..] {
        assert!(part.iter().all(|&x| x > pivot), "upper cube leak");
        assert!(is_sorted(part));
    }
    // nothing lost, nothing invented
    let now: Vec<i64> = after1.parts().iter().flatten().copied().collect();
    assert_eq!(multiset(&now), multiset(&values));

    // second iteration: within each 1-cube
    let after2 = hqs_step(&mut scl, after1, 2);

    // (f)/(g): fully ordered across the processor sequence
    assert!(globally_sorted(&after2));

    // (h) "values are sorted and collected to processor 0"
    let gathered = scl.gather(&after2);
    assert_eq!(gathered, multiset(&values));
    assert!(scl.machine.metrics.gathers >= 2, "scatter + final gather");
}

#[test]
fn figure2_communication_structure() {
    // d iterations on a d-cube; each iteration does exactly two fetch
    // permutes (pivot spread + partner exchange). Check the permute count
    // scales as expected with the dimension.
    let count_for = |dim: u32| -> u64 {
        let values = uniform_keys(1 << (dim + 3), 5);
        let mut scl = Scl::hypercube(1 << dim, CostModel::ap1000());
        let _ = scl_apps::hyperquicksort::hyperquicksort_flat(&mut scl, &values, dim);
        scl.machine.metrics.messages
    };
    let m2 = count_for(2);
    let m3 = count_for(3);
    let m4 = count_for(4);
    assert!(
        m3 > m2 && m4 > m3,
        "messages must grow with dimension: {m2} {m3} {m4}"
    );
}

#[test]
fn iteration_count_is_exactly_the_dimension() {
    // the paper: "After d iterations, values are sorted" — check that the
    // group-size sequence 2^d, 2^(d-1), …, 2 suffices and that one fewer
    // iteration leaves the array unsorted for adversarial data.
    let dim = 3u32;
    let values: Vec<i64> = (0..64).rev().collect(); // reverse-sorted
    let mut scl = Scl::hypercube(8, CostModel::ap1000());
    let da = scl.partition(Pattern::Block(8), &values);
    let mut da = scl.map_costed(&da, |p| {
        let mut v = p.clone();
        let w = seq_quicksort(&mut v);
        (v, w)
    });
    for i in 0..dim {
        assert!(
            !globally_sorted(&da) || i > 0,
            "reverse input must not be globally sorted before the first step"
        );
        let g = 1usize << (dim - i);
        da = hqs_step(&mut scl, da, g);
    }
    assert!(globally_sorted(&da));
}
