//! Differential suite for the fused executor: for every app plan and for
//! randomized `Skel` pipelines, eager `run`, partition-resident
//! `run_fused`, and (where lowerable) `run_optimized` must agree
//! bit-for-bit — under sequential, threaded, and cost-driven policies.
//!
//! The CI harness pins the policy set through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`); unset, every policy runs in-process.

#![allow(clippy::explicit_auto_deref)] // clippy's suggestion breaks inference on pick()
use scl::prelude::*;
use scl_apps::histogram::{histogram_plan, histogram_seq};
use scl_apps::jacobi::{jacobi_plan, jacobi_seq};
use scl_apps::msort::msort_plan;
use scl_apps::psrs::psrs_plan;
use scl_apps::workloads::uniform_keys;
use scl_core::{block_ranges, ParArray, SclError};
use scl_testkit::{cases, Rng};

const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

/// The policy matrix, overridable by the CI harness. An unparseable
/// `SCL_EXEC_POLICY` fails the suite instead of silently testing the
/// wrong thing.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

/// One random **lowerable** stage (also fusable by construction).
fn arb_sym_stage<'r>(rng: &mut Rng, reg: &'r Registry) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    match rng.below(5) {
        0 => Skel::map_sym(*rng.pick(SCALARS), reg),
        1 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        2 => Skel::fetch_sym(*rng.pick(IDXFNS), reg),
        3 => Skel::send_sym(*rng.pick(IDXFNS), reg),
        _ => Skel::scan_sym(*rng.pick(ASSOC_OPS), reg),
    }
}

/// One random stage from the wider fusable fragment: opaque compute
/// stages (which forfeit lowering but not fusion) mixed with
/// communication barriers.
fn arb_fusable_stage<'r>(
    rng: &mut Rng,
    reg: &'r Registry,
) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    match rng.below(8) {
        0 => {
            let k = rng.range_i64(-100, 100);
            Skel::map(move |x: &i64| x.wrapping_mul(3).wrapping_add(k))
        }
        1 => Skel::imap(|i, x: &i64| x.wrapping_add(i as i64)),
        2 => {
            let k = rng.range_i64(1, 5) as u64;
            Skel::map_costed(move |x: &i64| (x.wrapping_sub(7), Work::flops(k)))
        }
        3 => Skel::imap_costed(|i, x: &i64| (x ^ i as i64, Work::cmps(1))),
        4 => {
            let fill = rng.range_i64(-10, 10);
            Skel::shift(rng.range_i64(-3, 4) as isize, fill)
        }
        5 => Skel::fold_all(|a: &i64, b: &i64| a.wrapping_add(*b), Work::flops(1)),
        6 => Skel::scan(|a: &i64, b: &i64| (*a).max(*b)),
        _ => arb_sym_stage(rng, reg),
    }
}

fn arb_input(rng: &mut Rng) -> ParArray<i64> {
    let n = rng.range_usize(2, 24);
    ParArray::from_parts(rng.vec_of(n, |r| r.range_i64(-1_000_000, 1_000_000)))
}

#[test]
fn randomized_fusable_pipelines_agree() {
    let reg = Registry::standard();
    for policy in policies() {
        cases(96, 0xF0, |rng| {
            let len = rng.range_usize(1, 9);
            let mut plan = arb_fusable_stage(rng, &reg);
            for _ in 1..len {
                plan = plan.then(arb_fusable_stage(rng, &reg));
            }
            assert!(plan.fusable(), "every generated stage has a fused form");
            let input = arb_input(rng);
            let n = input.len();

            let mut eager_ctx = Scl::ap1000(n);
            let eager = plan.run(&mut eager_ctx, input.clone());

            let mut fused_ctx = Scl::ap1000(n).with_policy(policy);
            let fused = fused_ctx.run_fused(&plan, input).unwrap();

            assert_eq!(eager.to_vec(), fused.to_vec(), "policy {policy:?}");
            // charging agrees too: fused segments report the same costed
            // work, barriers run the same eager skeletons. (Approximate:
            // a segment charges one summed Work per part, so the clock
            // additions associate differently at the last ulp.)
            let (te, tf) = (
                eager_ctx.makespan().as_secs(),
                fused_ctx.makespan().as_secs(),
            );
            assert!(
                (te - tf).abs() <= 1e-9 * te.abs().max(1.0),
                "makespan diverged: eager {te} vs fused {tf} ({policy:?})"
            );
        });
    }
}

#[test]
fn randomized_lowerable_pipelines_agree_three_ways() {
    let reg = Registry::standard();
    for policy in policies() {
        cases(96, 0xF1, |rng| {
            let len = rng.range_usize(1, 8);
            let mut plan = arb_sym_stage(rng, &reg);
            for _ in 1..len {
                plan = plan.then(arb_sym_stage(rng, &reg));
            }
            let input = arb_input(rng);
            let n = input.len();

            let mut eager_ctx = Scl::ap1000(n);
            let eager = plan.run(&mut eager_ctx, input.clone());

            let mut fused_ctx = Scl::ap1000(n).with_policy(policy);
            let fused = fused_ctx.run_fused(&plan, input.clone()).unwrap();

            let mut opt_ctx = Scl::ap1000(n).with_policy(policy);
            let (optimized, _log) = opt_ctx.run_optimized(&plan, &reg, input);

            let tag = plan.lower(&reg).unwrap();
            assert_eq!(eager.to_vec(), fused.to_vec(), "{tag} ({policy:?})");
            assert_eq!(eager.to_vec(), optimized.to_vec(), "{tag} ({policy:?})");
        });
    }
}

#[test]
fn psrs_plan_agrees_on_all_paths() {
    for policy in policies() {
        for p in [2usize, 4, 8] {
            let data = uniform_keys(4000, 42 + p as u64);

            let mut eager_ctx = Scl::ap1000(p);
            let da = eager_ctx.partition(Pattern::Block(p), &data);
            let eager = psrs_plan(p).run(&mut eager_ctx, da);

            let mut fused_ctx = Scl::ap1000(p).with_policy(policy);
            let da = fused_ctx.partition(Pattern::Block(p), &data);
            let fused = fused_ctx.run_fused(&psrs_plan(p), da).unwrap();

            assert_eq!(eager, fused, "psrs p={p} ({policy:?})");

            // sanity against plain sort
            let mut expect = data.clone();
            expect.sort_unstable();
            let flat: Vec<i64> = fused.parts().iter().flatten().copied().collect();
            assert_eq!(flat, expect, "psrs p={p} ({policy:?})");
        }
    }
}

#[test]
fn msort_plan_agrees_on_all_paths() {
    for policy in policies() {
        for p in [2usize, 4, 8] {
            let data = uniform_keys(3000, 7 + p as u64);

            let mut eager_ctx = Scl::ap1000(p);
            let da = eager_ctx.partition(Pattern::Block(p), &data);
            let eager = msort_plan(p).run(&mut eager_ctx, da);

            let mut fused_ctx = Scl::ap1000(p).with_policy(policy);
            let da = fused_ctx.partition(Pattern::Block(p), &data);
            let fused = fused_ctx.run_fused(&msort_plan(p), da).unwrap();

            assert_eq!(eager, fused, "msort p={p} ({policy:?})");

            // the dc tree charges like the eager recursion
            let (te, tf) = (
                eager_ctx.makespan().as_secs(),
                fused_ctx.makespan().as_secs(),
            );
            assert!(
                (te - tf).abs() <= 1e-9 * te.abs().max(1.0),
                "msort makespan diverged: eager {te} vs fused {tf} (p={p}, {policy:?})"
            );

            // sanity against plain sort
            let mut expect = data.clone();
            expect.sort_unstable();
            let flat: Vec<i64> = fused.parts().iter().flatten().copied().collect();
            assert_eq!(flat, expect, "msort p={p} ({policy:?})");
        }
    }
}

#[test]
fn jacobi_plan_agrees_on_all_paths() {
    let u0: Vec<f64> = {
        let mut v = vec![0.0; 48];
        v[47] = 100.0;
        v
    };
    let n = u0.len();
    for policy in policies() {
        for p in [2usize, 4, 8] {
            let starts: Vec<usize> = block_ranges(n, p).iter().map(|r| r.start).collect();
            let seq = jacobi_seq(&u0, 1e-6, 400);

            let mut eager_ctx = Scl::ap1000(p);
            let da = eager_ctx.partition(Pattern::Block(p), &u0);
            let plan = jacobi_plan(n, starts.clone(), 1e-6, 400);
            let (ue, ie, re) = plan.run(&mut eager_ctx, (da, 0usize, f64::INFINITY));

            let mut fused_ctx = Scl::ap1000(p).with_policy(policy);
            let da = fused_ctx.partition(Pattern::Block(p), &u0);
            let plan = jacobi_plan(n, starts, 1e-6, 400);
            let (uf, if_, rf) = fused_ctx
                .run_fused(&plan, (da, 0usize, f64::INFINITY))
                .unwrap();

            assert_eq!(ue, uf, "jacobi p={p} ({policy:?})");
            assert_eq!((ie, re), (if_, rf), "jacobi p={p} ({policy:?})");
            assert_eq!(fused_ctx.gather(&uf), seq.u, "jacobi p={p} ({policy:?})");
        }
    }
}

#[test]
fn histogram_plan_agrees_on_all_paths() {
    let values: Vec<u64> = uniform_keys(5000, 9)
        .into_iter()
        .map(|x| x as u64)
        .collect();
    for policy in policies() {
        for (buckets, p) in [(16usize, 4usize), (10, 3), (64, 8)] {
            let expect = histogram_seq(&values, buckets);

            let mut eager_ctx = Scl::ap1000(p);
            let da = eager_ctx.partition(Pattern::Block(p), &values);
            let eager = histogram_plan(buckets, p).run(&mut eager_ctx, da);

            let mut fused_ctx = Scl::ap1000(p).with_policy(policy);
            let da = fused_ctx.partition(Pattern::Block(p), &values);
            let fused = fused_ctx
                .run_fused(&histogram_plan(buckets, p), da)
                .unwrap();

            assert_eq!(eager, fused, "histogram b={buckets} p={p} ({policy:?})");
            assert_eq!(
                fused_ctx.gather(&fused),
                expect,
                "histogram b={buckets} p={p} ({policy:?})"
            );
        }
    }
}

// ---- error and panic paths --------------------------------------------------

#[test]
fn fused_worker_panic_carries_the_stage_label() {
    for policy in policies() {
        let plan = Skel::map(|x: &i64| x + 1).then(Skel::map_costed(|x: &i64| {
            if *x == 3 {
                panic!("poisoned part");
            }
            (*x, Work::NONE)
        }));
        let mut scl = Scl::ap1000(8).with_policy(policy);
        let input = ParArray::from_parts((0..8).collect::<Vec<i64>>());
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = scl.run_fused(&plan, input);
        }))
        .unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .expect("fused panics re-raise as labelled strings");
        assert!(
            msg.contains("fused stage `map_costed`"),
            "{msg} ({policy:?})"
        );
        assert!(msg.contains("poisoned part"), "{msg} ({policy:?})");
    }
}

#[test]
fn oversized_configurations_error_instead_of_panicking() {
    // a partition wider than the machine, reached mid-plan
    let plan = Skel::partition(Pattern::Block(8))
        .then(Skel::balance())
        .then(Skel::gather());
    let mut scl = Scl::ap1000(4);
    let err = scl
        .run_fused(&plan, (0..64).collect::<Vec<i64>>())
        .unwrap_err();
    assert_eq!(
        err,
        SclError::MachineTooSmall {
            needed: 8,
            procs: 4
        }
    );

    // an input configuration wider than the machine, caught at entry
    let plan = histogram_plan(16, 8);
    let mut scl = Scl::ap1000(4);
    let wide = ParArray::from_parts(vec![vec![1u64]; 8]);
    assert_eq!(
        scl.run_fused(&plan, wide).unwrap_err(),
        SclError::MachineTooSmall {
            needed: 8,
            procs: 4
        }
    );
}

#[test]
fn unfusable_plans_fall_back_to_eager() {
    let plan = Skel::map(|x: &i64| x * 2).then(Skel::from_fn(|scl: &mut Scl, a: ParArray<i64>| {
        scl.rotate(1, &a)
    }));
    assert!(!plan.fusable());
    let mut scl = Scl::ap1000(4);
    let input = ParArray::from_parts(vec![1i64, 2, 3, 4]);
    let out = scl.run_fused(&plan, input).unwrap();
    assert_eq!(out.to_vec(), vec![4, 6, 8, 2]);
}
