//! Differential suite for the TCP front door: a reply that crosses the
//! wire must be **bit-for-bit** identical — output payload AND the
//! per-request machine accounting — to what an in-process
//! [`Serve::submit`] returns for the same tenant, plan, and payload.
//! Randomized multi-tenant traffic over loopback, under the seq / auto /
//! cost policy matrix (`SCL_EXEC_POLICY`, as in `serve_vs_solo.rs`),
//! in plain and optimize-then-execute modes, with and without the
//! autonomic manager actively turning the scheduling knobs mid-stream.

use scl::prelude::*;
use scl_core::ParArray;
use scl_machine::MachineReport;
use scl_net::{Mode, NetClient, NetConfig, NetServer, SloContract, TenantSpec};
use scl_serve::{Serve, ServePolicy, TenantId};
use scl_testkit::{cases, Rng};
use std::time::Duration;

const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

const PROCS: usize = 8;

fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

fn unit_machine(n: usize) -> Machine {
    Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
}

/// A random plan in the textual grammar — the wire ships *source*, so
/// the generator produces text and the in-process twin compiles the
/// same text through the same `parse` + `Skel::from_expr` path.
fn arb_source(seed: u64) -> String {
    let mut rng = Rng::seed_from_u64(seed);
    let stage = |rng: &mut Rng| match rng.below(5) {
        0 => format!("map({})", rng.pick(SCALARS)),
        1 => format!("rotate({})", rng.range_i64(-6, 7)),
        2 => format!("fetch({})", rng.pick(IDXFNS)),
        3 => format!("send({})", rng.pick(IDXFNS)),
        _ => format!("scan({})", rng.pick(ASSOC_OPS)),
    };
    let len = rng.range_usize(1, 5);
    (0..len)
        .map(|_| stage(&mut rng))
        .collect::<Vec<_>>()
        .join(" . ")
}

fn arb_payload(rng: &mut Rng, parts: usize) -> Vec<i64> {
    rng.vec_of(parts, |r| r.range_i64(-1_000_000, 1_000_000))
}

fn reg() -> &'static Registry {
    use std::sync::OnceLock;
    static REG: OnceLock<&'static Registry> = OnceLock::new();
    REG.get_or_init(|| Box::leak(Box::new(Registry::standard())))
}

/// The in-process twin of one wire submission: same machine template,
/// same policy, same key/mode submission path through `Serve`.
fn inproc_submit(
    srv: &mut Serve<ParArray<i64>, ParArray<i64>>,
    t: TenantId,
    mode: Mode,
    source: &str,
    key: &str,
    payload: &[i64],
) -> (Vec<i64>, MachineReport) {
    let expr = scl_transform::parse(source).expect("generator emits valid grammar");
    let skel = scl_core::Skel::from_expr(&expr, reg()).expect("generator emits servable plans");
    let input = ParArray::from_parts(payload.to_vec());
    let ticket = match mode {
        Mode::Plain => srv.submit_keyed(t, key, skel, input).unwrap(),
        Mode::Optimized => srv.submit_optimized(t, key, &skel, reg(), input).unwrap(),
    };
    srv.run_until_idle();
    let (out, report) = srv.take(ticket).expect("in-process request completes");
    (out.parts().to_vec(), report)
}

/// One request description, shared by the wire and in-process sides.
#[derive(Clone)]
struct Call {
    tenant: u32,
    mode: Mode,
    source: String,
    key: String,
    payload: Vec<i64>,
}

fn arb_calls(rng: &mut Rng, n_tenants: usize, rounds: usize) -> Vec<Call> {
    // a small pool of distinct plans per tenant exercises both the
    // compile path and the cache-hit path on both sides
    let seeds: Vec<u64> = (0..n_tenants).map(|_| rng.next_u64()).collect();
    let mut calls = Vec::new();
    for _ in 0..rounds {
        for (t, &seed) in seeds.iter().enumerate() {
            let variant = rng.below(2); // two plans per tenant
            let plan_seed = seed.wrapping_add(variant);
            let mode = if rng.bool() {
                Mode::Plain
            } else {
                Mode::Optimized
            };
            calls.push(Call {
                tenant: t as u32,
                mode,
                source: arb_source(plan_seed),
                key: format!("plan-{plan_seed}"),
                payload: arb_payload(rng, PROCS),
            });
        }
    }
    calls
}

fn server_config(policy: ExecPolicy, n_tenants: usize) -> NetConfig {
    NetConfig {
        procs: PROCS,
        exec: policy,
        tenants: (0..n_tenants)
            .map(|i| TenantSpec::new(&format!("t{i}")).with_weight(1 + i as u32))
            .collect(),
        manager_tick: Duration::ZERO,
        ..NetConfig::default()
    }
}

#[test]
fn wire_replies_equal_in_process_serve_bit_for_bit() {
    for policy in policies() {
        cases(3, 0x000e_7011, |rng| {
            let n_tenants = rng.range_usize(2, 4);
            let calls = arb_calls(rng, n_tenants, 3);

            let server = NetServer::start(server_config(policy, n_tenants)).unwrap();
            let mut client = NetClient::connect(server.local_addr()).unwrap();
            let wire: Vec<(Vec<i64>, MachineReport)> = calls
                .iter()
                .map(|c| {
                    let r = client
                        .submit_source(c.tenant, c.mode, &c.source, &c.key, &c.payload)
                        .unwrap_or_else(|e| panic!("{policy:?} `{}`: {e}", c.source));
                    (r.output, r.report)
                })
                .collect();
            server.shutdown();

            let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
                Serve::new(ServePolicy::new(unit_machine(PROCS)).with_exec(policy));
            let ids: Vec<TenantId> = (0..n_tenants)
                .map(|i| srv.add_tenant_weighted(&format!("t{i}"), 1 + i as u32))
                .collect();
            for (i, (c, (wire_out, wire_report))) in calls.iter().zip(&wire).enumerate() {
                let (out, report) = inproc_submit(
                    &mut srv,
                    ids[c.tenant as usize],
                    c.mode,
                    &c.source,
                    &c.key,
                    &c.payload,
                );
                assert_eq!(
                    *wire_out, out,
                    "call {i} `{}` output ({policy:?}, {:?})",
                    c.source, c.mode
                );
                assert_eq!(
                    *wire_report, report,
                    "call {i} `{}` accounting ({policy:?}, {:?})",
                    c.source, c.mode
                );
            }
        });
    }
}

#[test]
fn concurrent_tenants_over_loopback_match_in_process_replay() {
    // Several client threads hammer the server concurrently — requests
    // interleave arbitrarily in the admission queue and batch windows —
    // yet every reply must still equal the in-process twin, because
    // per-request accounting is isolated by construction.
    for policy in policies() {
        let n_tenants = 3;
        let server = NetServer::start(server_config(policy, n_tenants)).unwrap();
        let addr = server.local_addr();

        let handles: Vec<_> = (0..n_tenants as u32)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut rng = Rng::seed_from_u64(0xc0_fe + u64::from(t));
                    let mut client = NetClient::connect(addr).unwrap();
                    let mut log = Vec::new();
                    for round in 0..6 {
                        let plan_seed = u64::from(t) * 100 + u64::from(round % 2u32);
                        let source = arb_source(plan_seed);
                        let key = format!("plan-{plan_seed}");
                        let payload = arb_payload(&mut rng, PROCS);
                        let r = client
                            .submit_source(t, Mode::Plain, &source, &key, &payload)
                            .unwrap();
                        log.push((source, key, payload, r.output, r.report));
                    }
                    (t, log)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        server.shutdown();

        let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
            Serve::new(ServePolicy::new(unit_machine(PROCS)).with_exec(policy));
        let ids: Vec<TenantId> = (0..n_tenants)
            .map(|i| srv.add_tenant_weighted(&format!("t{i}"), 1 + i as u32))
            .collect();
        for (t, log) in results {
            for (i, (source, key, payload, wire_out, wire_report)) in log.into_iter().enumerate() {
                let (out, report) = inproc_submit(
                    &mut srv,
                    ids[t as usize],
                    Mode::Plain,
                    &source,
                    &key,
                    &payload,
                );
                assert_eq!(wire_out, out, "tenant {t} call {i} output ({policy:?})");
                assert_eq!(
                    wire_report, report,
                    "tenant {t} call {i} accounting ({policy:?})"
                );
            }
        }
    }
}

#[test]
fn manager_knob_churn_never_changes_wire_answers() {
    // Run the autonomic manager at an aggressive cadence against an
    // unmeetable SLO so it actuates constantly (batch window, weights,
    // width cap), and pin that the answers still match the in-process
    // twin exactly: the MAPE loop may only change *when/how wide*, never
    // *what*.
    for policy in policies() {
        let mut cfg = server_config(policy, 2);
        cfg.manager_tick = Duration::from_millis(5);
        cfg.tenants[0] =
            TenantSpec::new("t0").with_slo(SloContract::parse("p99<0.0001ms").unwrap());
        let server = NetServer::start(cfg).unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();

        let mut rng = Rng::seed_from_u64(0x6e0b_5eed);
        let mut log = Vec::new();
        for i in 0..20u64 {
            let plan_seed = i % 3;
            let source = arb_source(plan_seed);
            let key = format!("plan-{plan_seed}");
            let payload = arb_payload(&mut rng, PROCS);
            let tenant = (i % 2) as u32;
            let r = client
                .submit_source(tenant, Mode::Plain, &source, &key, &payload)
                .unwrap();
            log.push((tenant, source, key, payload, r.output, r.report));
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = server.stats_json();
        server.shutdown();
        assert!(
            stats.contains("shrink batch window") || stats.contains("boost tenant"),
            "the manager actually actuated during the run: {stats}"
        );

        let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
            Serve::new(ServePolicy::new(unit_machine(PROCS)).with_exec(policy));
        let ids = [srv.add_tenant("t0"), srv.add_tenant_weighted("t1", 2)];
        for (i, (tenant, source, key, payload, wire_out, wire_report)) in
            log.into_iter().enumerate()
        {
            let (out, report) = inproc_submit(
                &mut srv,
                ids[tenant as usize],
                Mode::Plain,
                &source,
                &key,
                &payload,
            );
            assert_eq!(
                wire_out, out,
                "call {i} output under knob churn ({policy:?})"
            );
            assert_eq!(
                wire_report, report,
                "call {i} accounting under knob churn ({policy:?})"
            );
        }
    }
}
