//! Differential suite for the zero-copy communication layer: every owned
//! (move-based) skeleton variant must agree **bit-for-bit** with its
//! borrowed (cloning) form *and* leave identical `machine.metrics`
//! (messages, bytes, exchanges, …) and makespan — under sequential,
//! threaded, and cost-driven policies, on both the unit and AP1000 cost
//! models (the latter exercises the pool-parallel gate's "stay sequential"
//! branch, the former its fan-out branch).
//!
//! The CI harness pins the policy set through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`); unset, every policy runs in-process.

use scl::prelude::*;
use scl_core::ParArray;
use scl_testkit::{cases, Rng};

/// The policy matrix, overridable by the CI harness. An unparseable
/// `SCL_EXEC_POLICY` fails the suite instead of silently testing the
/// wrong thing.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

/// Both machines the suite runs on: unit (cheap coordination — the
/// pool-parallel gate fans out) and AP1000 (expensive coordination — small
/// movements stay inline).
fn machines(n: usize) -> Vec<Scl> {
    vec![
        Scl::new(Machine::new(
            Topology::FullyConnected { procs: n },
            CostModel::unit(),
        )),
        Scl::ap1000(n),
    ]
}

/// Run `borrowed` and `owned` on twin contexts and require identical
/// outputs, metrics, and makespan.
fn check<T: PartialEq + std::fmt::Debug>(
    label: &str,
    n: usize,
    policy: ExecPolicy,
    borrowed: impl Fn(&mut Scl) -> T,
    owned: impl Fn(&mut Scl) -> T,
) {
    for (mut s1, mut s2) in machines(n).into_iter().zip(machines(n)) {
        s1.policy = policy;
        s2.policy = policy;
        let b = borrowed(&mut s1);
        let o = owned(&mut s2);
        assert_eq!(b, o, "{label}: outputs diverged ({policy:?})");
        assert_eq!(
            s1.machine.metrics, s2.machine.metrics,
            "{label}: metrics diverged ({policy:?})"
        );
        assert_eq!(
            s1.makespan(),
            s2.makespan(),
            "{label}: makespan diverged ({policy:?})"
        );
    }
}

fn arb_parts(rng: &mut Rng) -> ParArray<Vec<i64>> {
    let n = rng.range_usize(1, 10);
    ParArray::from_parts(rng.vec_of(n, |r| {
        let len = r.range_usize(0, 40);
        r.vec_of(len, |r| r.range_i64(-1_000, 1_000))
    }))
}

#[test]
fn rotate_shift_owned_match_borrowed() {
    for policy in policies() {
        cases(64, 0xA0, |rng| {
            let a = arb_parts(rng);
            let n = a.len();
            let k = rng.range_i64(-12, 13) as isize;
            let a2 = a.clone();
            check(
                "rotate",
                n,
                policy,
                |s| s.rotate(k, &a),
                move |s| s.rotate_owned(k, a2.clone()),
            );
            let fill = vec![rng.range_i64(-5, 5)];
            let a2 = a.clone();
            let f2 = fill.clone();
            check(
                "shift",
                n,
                policy,
                |s| s.shift(k, &a, &fill),
                move |s| s.shift_owned(k, a2.clone(), &f2),
            );
        });
    }
}

#[test]
fn grid_rotations_owned_match_borrowed() {
    for policy in policies() {
        cases(48, 0xA1, |rng| {
            let rows = rng.range_usize(1, 5);
            let cols = rng.range_usize(1, 5);
            let g = ParArray::from_grid(
                rows,
                cols,
                rng.vec_of(rows * cols, |r| r.vec_of(8, |r| r.any_i64())),
            );
            let d = rng.range_i64(-3, 4);
            let g2 = g.clone();
            check(
                "rotate_row",
                rows * cols,
                policy,
                |s| s.rotate_row(|i| (d * i as i64) as isize, &g),
                move |s| s.rotate_row_owned(|i| (d * i as i64) as isize, g2.clone()),
            );
            let g2 = g.clone();
            check(
                "rotate_col",
                rows * cols,
                policy,
                |s| s.rotate_col(|j| (d + j as i64) as isize, &g),
                move |s| s.rotate_col_owned(|j| (d + j as i64) as isize, g2.clone()),
            );
        });
    }
}

#[test]
fn fetch_send_owned_match_borrowed() {
    for policy in policies() {
        cases(64, 0xA2, |rng| {
            let a = arb_parts(rng);
            let n = a.len();
            // a random (possibly many-to-one) index map, shared by both
            let srcs: Vec<usize> = (0..n).map(|_| rng.range_usize(0, n)).collect();
            let a2 = a.clone();
            let srcs2 = srcs.clone();
            check(
                "fetch",
                n,
                policy,
                |s| s.fetch(|i| srcs[i], &a),
                move |s| s.fetch_owned(|i| srcs2[i], a2.clone()),
            );
            // random one-to-many destination lists
            let dests: Vec<Vec<usize>> = (0..n)
                .map(|_| {
                    let d = rng.range_usize(0, 4);
                    (0..d).map(|_| rng.range_usize(0, n)).collect()
                })
                .collect();
            let a2 = a.clone();
            let dests2 = dests.clone();
            check(
                "send",
                n,
                policy,
                |s| s.send(|k| dests[k].clone(), &a),
                move |s| s.send_owned(|k| dests2[k].clone(), a2.clone()),
            );
        });
    }
}

#[test]
fn brdcast_owned_matches_borrowed() {
    for policy in policies() {
        cases(32, 0xA3, |rng| {
            let a = arb_parts(rng);
            let n = a.len();
            let item_len = rng.range_usize(0, 10);
            let item: Vec<i64> = rng.vec_of(item_len, |r| r.any_i64());
            let a2 = a.clone();
            let i2 = item.clone();
            check(
                "brdcast",
                n,
                policy,
                |s| s.brdcast(&item, &a),
                move |s| s.brdcast_owned(&i2, a2.clone()),
            );
        });
    }
}

#[test]
fn total_exchange_owned_matches_borrowed() {
    for policy in policies() {
        cases(48, 0xA4, |rng| {
            let n = rng.range_usize(1, 9);
            let a = ParArray::from_parts(rng.vec_of(n, |r| {
                (0..n)
                    .map(|_| {
                        let len = r.range_usize(0, 24);
                        r.vec_of(len, |r| r.range_i64(-99, 99))
                    })
                    .collect::<Vec<Vec<i64>>>()
            }));
            let a2 = a.clone();
            check(
                "total_exchange",
                n,
                policy,
                |s| s.total_exchange(&a),
                move |s| s.total_exchange_owned(a2.clone()),
            );
        });
    }
}

#[test]
fn balance_gather_partition_owned_match_borrowed() {
    for policy in policies() {
        cases(48, 0xA5, |rng| {
            let a = arb_parts(rng);
            let n = a.len();
            let a2 = a.clone();
            check(
                "balance",
                n,
                policy,
                |s| s.balance(&a),
                move |s| s.balance_owned(a2.clone()),
            );
            let a2 = a.clone();
            check(
                "gather",
                n,
                policy,
                |s| s.gather(&a),
                move |s| s.gather_owned(a2.clone()),
            );

            let data_len = rng.range_usize(0, 200);
            let data: Vec<i64> = rng.vec_of(data_len, |r| r.any_i64());
            let p = rng.range_usize(1, 9);
            let pattern = *rng.pick(&[
                Pattern::Block(p),
                Pattern::Cyclic(p),
                Pattern::BlockCyclic { p, block: 3 },
            ]);
            let d2 = data.clone();
            check(
                "partition",
                p,
                policy,
                |s| s.partition(pattern, &data),
                move |s| s.partition_owned(pattern, d2.clone()),
            );
        });
    }
}

#[test]
fn owned_barrier_plans_agree_with_cloning_eager_path() {
    // The plan layer's barriers now consume their arrays; a pipeline mixing
    // every owned barrier must still match the hand-written borrowed
    // composition, charges included.
    for policy in policies() {
        let data: Vec<i64> = (0..64).map(|i| (i * 37) % 101 - 50).collect();

        let plan = Skel::partition(Pattern::Block(8))
            .then(Skel::balance())
            .then(Skel::map_costed(|v: &Vec<i64>| {
                (
                    v.iter().map(|x| x * 2).collect::<Vec<i64>>(),
                    Work::flops(1),
                )
            }))
            .then(Skel::rotate(3))
            .then(Skel::shift(-1, Vec::new()))
            .then(Skel::gather());
        let mut s1 = Scl::ap1000(8).with_policy(policy);
        let via_plan = plan.run(&mut s1, data.clone());

        let mut s2 = Scl::ap1000(8).with_policy(policy);
        let da = s2.partition(Pattern::Block(8), &data);
        let da = s2.balance(&da);
        let da = s2.map_costed(&da, |v| {
            (
                v.iter().map(|x| x * 2).collect::<Vec<i64>>(),
                Work::flops(1),
            )
        });
        let da = s2.rotate(3, &da);
        let da = s2.shift(-1, &da, &Vec::new());
        let via_borrowed = s2.gather(&da);

        assert_eq!(via_plan, via_borrowed, "{policy:?}");
        assert_eq!(s1.machine.metrics, s2.machine.metrics, "{policy:?}");
        assert_eq!(s1.makespan(), s2.makespan(), "{policy:?}");

        // and the fused path agrees too
        let mut s3 = Scl::ap1000(8).with_policy(policy);
        let via_fused = s3.run_fused(&plan, data).unwrap();
        assert_eq!(via_fused, via_plan, "{policy:?}");
        assert_eq!(s3.machine.metrics, s1.machine.metrics, "{policy:?}");
    }
}

#[test]
fn owned_maps_match_borrowed_forms() {
    for policy in policies() {
        cases(32, 0xA6, |rng| {
            let a = arb_parts(rng);
            let n = a.len();
            let a2 = a.clone();
            check(
                "imap_costed",
                n,
                policy,
                |s| {
                    s.imap_costed(&a, |i, v| {
                        (v.iter().sum::<i64>() + i as i64, Work::cmps(v.len() as u64))
                    })
                },
                move |s| {
                    s.imap_costed_owned(a2.clone(), |i, v| {
                        (v.iter().sum::<i64>() + i as i64, Work::cmps(v.len() as u64))
                    })
                },
            );
        });
    }
}
