//! The paper's literal definitions, held to executably.
//!
//! §2 defines several skeletons *by equation* (farm via map, applybrdcast
//! via brdcast, iterFor via iterUntil, SPMD stages as `gf ∘ imap lf`).
//! These tests check our implementations satisfy those defining equations,
//! not merely behave plausibly.

use scl::prelude::*;
use scl_core::SpmdStage;

fn unit_ctx(n: usize) -> Scl {
    Scl::new(Machine::new(
        Topology::FullyConnected { procs: n },
        CostModel::unit(),
    ))
}

#[test]
fn farm_is_map_of_applied_env() {
    // farm f env = map (f env)
    let mut s1 = unit_ctx(4);
    let mut s2 = unit_ctx(4);
    let a = ParArray::from_parts(vec![1, 2, 3, 4]);
    let env = 10;
    let farm = s1.farm(|e: &i32, x: &i32| e * x, &env, &a);
    let map = s2.map(&a, |x| env * x);
    assert_eq!(farm, map);
}

#[test]
fn apply_brdcast_is_brdcast_of_f_at_i() {
    // applybrdcast f i A = brdcast (f A[i]) A
    let mut s1 = unit_ctx(3);
    let mut s2 = unit_ctx(3);
    let a = ParArray::from_parts(vec![5, 7, 9]);
    let f = |x: &i32| x * 100;
    let lhs = s1.apply_brdcast(f, 1, &a);
    let rhs = s2.brdcast(&f(a.part(1)), &a);
    assert_eq!(lhs, rhs);
    // and the cost structure matches: exactly one broadcast each
    assert_eq!(s1.machine.metrics.broadcasts, 1);
    assert_eq!(s2.machine.metrics.broadcasts, 1);
}

#[test]
fn iter_for_is_iter_until_with_counter() {
    // iterFor terminator iterSolve x =
    //   fst (iterUntil iSolve id con (x, 0))
    //     where iSolve (x, i) = (iterSolve i x, i+1)
    //           con (x, j) = j >= terminator
    let mut s1 = unit_ctx(1);
    let mut s2 = unit_ctx(1);
    let body = |i: usize, x: i64| x * 2 + i as i64;

    let direct = s1.iter_for(5, |_, i, x: i64| body(i, x), 1);
    let encoded = s2
        .iter_until(
            |_, (x, i): (i64, usize)| (body(i, x), i + 1),
            |_, s| s,
            |(_, j)| *j >= 5,
            (1, 0),
        )
        .0;
    assert_eq!(direct, encoded);
}

#[test]
fn spmd_stage_is_gf_after_imap_lf() {
    // SPMD [(gf, lf)] = gf ∘ imap lf   (plus the barrier the composition
    // models)
    let a = ParArray::from_parts(vec![1, 2, 3, 4]);

    let mut s1 = unit_ctx(4);
    let stages = vec![SpmdStage::new(
        "stage",
        |i: usize, x: &i32| (x + i as i32, Work::NONE),
        |scl: &mut Scl, d: ParArray<i32>| scl.rotate(1, &d),
    )];
    let spmd = s1.spmd(stages, a.clone());

    let mut s2 = unit_ctx(4);
    let local = s2.imap(&a, |i, x| x + i as i32);
    s2.machine.barrier_group(local.procs());
    let manual = s2.rotate(1, &local);

    assert_eq!(spmd, manual);
    assert_eq!(s1.makespan(), s2.makespan());
    assert_eq!(
        s1.machine.metrics.group_barriers,
        s2.machine.metrics.group_barriers
    );
}

#[test]
fn gauss_elim_pivot_is_map_update_of_applybrdcast() {
    // elimPivot i x = map (UPDATE i) (applybrdcast (PARTIALPIVOT i) i x)
    // — check the program *shape* on a tiny system: one iteration of the
    // app's solver performs exactly one broadcast followed by one
    // data-parallel map (compute step per processor).
    use scl::apps::gauss::gauss_jordan_scl;
    use scl::apps::workloads::diag_dominant_system;
    let (a, b) = diag_dominant_system(6, 3);
    let mut scl = Scl::ap1000(3);
    let _ = gauss_jordan_scl(&mut scl, &a, &b, 3);
    let m = &scl.machine.metrics;
    // n iterations => n broadcasts; map UPDATE runs on every proc each
    // iteration (plus setup steps)
    assert_eq!(m.broadcasts, 6);
    assert!(m.compute_steps >= 6 * 3);
}

#[test]
fn rotate_matches_papers_index_formula() {
    // rotate k A = ⟨i ↦ A[(i + k) mod SIZE(A)]⟩
    let mut s = unit_ctx(5);
    let a = ParArray::from_parts(vec![10, 11, 12, 13, 14]);
    for k in -7isize..=7 {
        let r = s.rotate(k, &a);
        for i in 0..5usize {
            let src = (i as isize + k).rem_euclid(5) as usize;
            assert_eq!(r.part(i), a.part(src), "k={k} i={i}");
        }
    }
}

#[test]
fn send_and_fetch_match_papers_formulas() {
    let mut s = unit_ctx(4);
    let a = ParArray::from_parts(vec![100, 200, 300, 400]);

    // fetch f: ⟨x_{f 0}, …, x_{f n}⟩
    let f = |i: usize| (i + 2) % 4;
    let fetched = s.fetch(f, &a);
    for i in 0..4 {
        assert_eq!(fetched.part(i), a.part(f(i)));
    }

    // send f: element k reaches every j ∈ f(k); multiset check
    let dests = |k: usize| -> Vec<usize> { vec![(k * 2) % 4, 3] };
    let sent = s.send(dests, &a);
    let mut expected: Vec<Vec<i32>> = vec![vec![]; 4];
    for k in 0..4 {
        for j in dests(k) {
            expected[j].push(*a.part(k));
        }
    }
    for (j, want) in expected.iter().enumerate() {
        let mut got = sent.part(j).clone();
        let mut want = want.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "destination {j}");
    }
}

#[test]
fn distribution_definition_composes_align_and_partition() {
    // distribution [(p,f)] applied pointwise = align ∘ (partition each)
    let mut scl = unit_ctx(4);
    let a: Vec<i64> = (0..8).collect();
    let b: Vec<i64> = (8..16).collect();
    let cfg = scl.distribution2(Pattern::Block(4), &a, Pattern::Block(4), &b);
    for i in 0..4 {
        let (pa, pb) = cfg.part(i);
        assert_eq!(pa, &a[2 * i..2 * i + 2].to_vec());
        assert_eq!(pb, &b[2 * i..2 * i + 2].to_vec());
    }
}
