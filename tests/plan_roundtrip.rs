//! Property tests for the plan API's central guarantee: for any plan in
//! the lowerable fragment, eager `Skel::run` and the full
//! lower → `optimize` → raise → run path produce identical results — and
//! the rewrites really fire (they are observable in the `optimize` log).

#![allow(clippy::explicit_auto_deref)] // clippy's suggestion breaks inference on pick()
use scl::prelude::*;
use scl_core::ParArray;
use scl_testkit::{cases, Rng};

const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

/// One random lowerable stage, as (plan, human-readable tag).
fn arb_stage<'r>(rng: &mut Rng, reg: &'r Registry) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    match rng.below(5) {
        0 => Skel::map_sym(*rng.pick(SCALARS), reg),
        1 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        2 => Skel::fetch_sym(*rng.pick(IDXFNS), reg),
        3 => Skel::send_sym(*rng.pick(IDXFNS), reg),
        _ => Skel::scan_sym(*rng.pick(ASSOC_OPS), reg),
    }
}

/// A random lowerable pipeline of 1–7 stages.
fn arb_plan<'r>(rng: &mut Rng, reg: &'r Registry) -> Skel<'r, ParArray<i64>, ParArray<i64>> {
    let len = rng.range_usize(1, 8);
    let mut plan = arb_stage(rng, reg);
    for _ in 1..len {
        plan = plan.then(arb_stage(rng, reg));
    }
    plan
}

fn arb_input(rng: &mut Rng) -> ParArray<i64> {
    let n = rng.range_usize(4, 24);
    ParArray::from_parts(rng.vec_of(n, |r| r.range_i64(-1_000_000, 1_000_000)))
}

#[test]
fn eager_run_agrees_with_optimize_then_execute() {
    let reg = Registry::standard();
    cases(128, 0xB1, |rng| {
        let plan = arb_plan(rng, &reg);
        let input = arb_input(rng);
        let n = input.len();

        let mut eager_ctx = Scl::ap1000(n);
        let eager = plan.run(&mut eager_ctx, input.clone());

        let mut opt_ctx = Scl::ap1000(n);
        let (optimized, _log) = opt_ctx.run_optimized(&plan, &reg, input);

        assert_eq!(
            eager.to_vec(),
            optimized.to_vec(),
            "plan {} diverged after optimization",
            plan.lower(&reg).unwrap()
        );
        // optimization must never cost *more* virtual time
        assert!(
            opt_ctx.makespan() <= eager_ctx.makespan(),
            "optimized {} vs eager {}",
            opt_ctx.makespan(),
            eager_ctx.makespan()
        );
    });
}

#[test]
fn eager_run_agrees_with_the_reference_interpreter() {
    let reg = Registry::standard();
    cases(128, 0xB2, |rng| {
        let plan = arb_plan(rng, &reg);
        let input = arb_input(rng);
        let e = plan.lower(&reg).expect("generated plans are lowerable");

        let mut scl = Scl::ap1000(input.len());
        let got = plan.run(&mut scl, input.clone()).to_vec();
        let expect = eval(&e, &reg, Value::Arr(input.to_vec())).unwrap();
        assert_eq!(
            Value::Arr(got),
            expect,
            "plan {e} disagrees with the interpreter"
        );
    });
}

#[test]
fn adjacent_maps_always_fuse_observably() {
    let reg = Registry::standard();
    cases(96, 0xB3, |rng| {
        // force a fusible pair: ... map(f) . map(g) ... somewhere
        let prefix = arb_plan(rng, &reg);
        let plan = prefix
            .then(Skel::map_sym(*rng.pick(SCALARS), &reg))
            .then(Skel::map_sym(*rng.pick(SCALARS), &reg));
        let input = arb_input(rng);

        let mut eager_ctx = Scl::ap1000(input.len());
        let eager = plan.run(&mut eager_ctx, input.clone());
        let mut opt_ctx = Scl::ap1000(input.len());
        let (optimized, log) = opt_ctx.run_optimized(&plan, &reg, input);

        assert_eq!(eager.to_vec(), optimized.to_vec());
        // the rewrite must be observable in the optimize log
        assert!(
            log.iter().any(|a| a.rule == "map-fusion"),
            "no map-fusion logged for {}",
            plan.lower(&reg).unwrap()
        );
    });
}

#[test]
fn cancelling_rotations_always_vanish_observably() {
    let reg = Registry::standard();
    cases(96, 0xB4, |rng| {
        let k = rng.range_i64(1, 6) as isize;
        let prefix = arb_plan(rng, &reg);
        let plan = prefix.then(Skel::rotate(k)).then(Skel::rotate(-k));
        let input = arb_input(rng);

        let mut eager_ctx = Scl::ap1000(input.len());
        let eager = plan.run(&mut eager_ctx, input.clone());
        let mut opt_ctx = Scl::ap1000(input.len());
        let (optimized, log) = opt_ctx.run_optimized(&plan, &reg, input);

        assert_eq!(eager.to_vec(), optimized.to_vec());
        assert!(
            log.iter().any(|a| a.rule == "rotate-fusion"),
            "no rotate-fusion logged for {}",
            plan.lower(&reg).unwrap()
        );
        // and the fused rotation must actually be gone from the program
        // that ran: rotate(k) . rotate(-k) contributes zero messages
        let opt_expr = scl::transform::optimize(plan.lower(&reg).unwrap(), &reg).0;
        let rotations = opt_expr.count(&|x| matches!(x, Expr::Rotate(_)));
        let original = plan.lower(&reg).unwrap();
        let before = original.count(&|x| matches!(x, Expr::Rotate(_)));
        assert!(
            rotations < before,
            "{original} kept all its rotations: {opt_expr}"
        );
    });
}

#[test]
fn raised_plans_relower_to_the_same_program() {
    let reg = Registry::standard();
    cases(96, 0xB5, |rng| {
        let plan = arb_plan(rng, &reg);
        let e = plan.lower(&reg).unwrap();
        let raised = Skel::from_expr(&e, &reg).unwrap();
        assert_eq!(
            raised.lower(&reg),
            Some(e),
            "lower ∘ from_expr must be the identity"
        );
    });
}
