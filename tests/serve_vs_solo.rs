//! Differential suite for the multi-tenant plan service: N concurrent
//! tenants submitting through `scl-serve` must produce outputs **and**
//! per-request `MachineReport`s identical to N solo `Skel::run` (or, for
//! optimized submissions, `Scl::run_optimized`) calls — under sequential,
//! threaded, and cost-driven policies, for randomized plans and for the
//! app plans (PSRS, histogram, batch histogram, Jacobi). Plus the cache
//! contract: the plan-cache hit path produces results identical to the
//! cold compile-per-request path.
//!
//! The CI harness pins the policy set through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`); unset, every policy runs in-process.

#![allow(clippy::explicit_auto_deref)] // clippy's suggestion breaks inference on pick()
use scl::prelude::*;
use scl_apps::histogram::{histogram_plan, histogram_seq};
use scl_apps::jacobi::{jacobi_plan, JacobiState};
use scl_apps::psrs::psrs_plan;
use scl_apps::stream_histogram::batch_histogram_plan;
use scl_apps::workloads::uniform_keys;
use scl_core::{block_ranges, ParArray};
use scl_machine::MachineReport;
use scl_serve::{Serve, ServePolicy, TenantId, Ticket};
use scl_testkit::dag::{arb_dag, DagStats};
use scl_testkit::{cases, Rng};
use std::sync::OnceLock;

const SCALARS: &[&str] = &["inc", "dec", "double", "square", "neg", "halve", "heavy"];
const IDXFNS: &[&str] = &["id", "succ", "pred", "xor1", "half", "rev", "zero"];
const ASSOC_OPS: &[&str] = &["add", "mul", "max", "min"];

fn reg() -> &'static Registry {
    // `Registry` is `Sync` but not `Send` (boxed index functions), so the
    // shared static holds a leaked reference rather than the value
    static REG: OnceLock<&'static Registry> = OnceLock::new();
    REG.get_or_init(|| Box::leak(Box::new(Registry::standard())))
}

/// The policy matrix, overridable by the CI harness. An unparseable
/// `SCL_EXEC_POLICY` fails the suite instead of silently testing the
/// wrong thing.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

fn unit_machine(n: usize) -> Machine {
    Machine::new(Topology::FullyConnected { procs: n }, CostModel::unit())
}

/// One random fusable stage — same fragment the streaming differential
/// suite serves. Seed-deterministic, so rebuilding a plan from the same
/// seed reproduces the identical closures for the solo baseline.
fn arb_stage(rng: &mut Rng) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    match rng.below(9) {
        0 => {
            let k = rng.range_i64(-100, 100);
            Skel::map(move |x: &i64| x.wrapping_mul(3).wrapping_add(k))
        }
        1 => Skel::imap(|i, x: &i64| x.wrapping_add(i as i64)),
        2 => {
            let k = rng.range_i64(1, 5) as u64;
            Skel::map_costed(move |x: &i64| (x.wrapping_sub(7), Work::flops(k)))
        }
        3 => Skel::imap_costed(|i, x: &i64| (x ^ i as i64, Work::cmps(1))),
        4 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        5 => {
            let fill = rng.range_i64(-10, 10);
            Skel::shift(rng.range_i64(-3, 4) as isize, fill)
        }
        6 => Skel::fold_all(|a: &i64, b: &i64| a.wrapping_add(*b), Work::flops(1)),
        7 => Skel::scan(|a: &i64, b: &i64| (*a).max(*b)),
        _ => {
            let k = rng.range_i64(0, 17) as usize;
            Skel::fetch(move |i| i.saturating_sub(k))
        }
    }
}

fn arb_plan(seed: u64) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    let mut rng = Rng::seed_from_u64(seed);
    let len = rng.range_usize(1, 7);
    let mut plan = arb_stage(&mut rng);
    for _ in 1..len {
        plan = plan.then(arb_stage(&mut rng));
    }
    plan
}

/// One random **lowerable** plan (the `submit_optimized` fragment).
fn arb_sym_plan(seed: u64) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    let mut rng = Rng::seed_from_u64(seed);
    let r = reg();
    let stage = |rng: &mut Rng| match rng.below(5) {
        0 => Skel::map_sym(*rng.pick(SCALARS), r),
        1 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        2 => Skel::fetch_sym(*rng.pick(IDXFNS), r),
        3 => Skel::send_sym(*rng.pick(IDXFNS), r),
        _ => Skel::scan_sym(*rng.pick(ASSOC_OPS), r),
    };
    let len = rng.range_usize(1, 7);
    let mut plan = stage(&mut rng);
    for _ in 1..len {
        plan = plan.then(stage(&mut rng));
    }
    plan
}

/// One random **DAG** plan (branching through `pair` / `fanout` /
/// `choice` / `dac`), rebuilt deterministically from its seed so the
/// solo baseline and the cache key are both reproducible.
fn arb_dag_plan(seed: u64) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut stats = DagStats::default();
    arb_dag(&mut rng, reg(), 8, 3, &mut stats)
}

fn arb_item(rng: &mut Rng, parts: usize) -> ParArray<i64> {
    ParArray::from_parts(rng.vec_of(parts, |r| r.range_i64(-1_000_000, 1_000_000)))
}

/// Split `values` into `p` block parts, placed like the apps place them.
fn block_parts<T: Clone + Send + 'static>(values: &[T], p: usize) -> ParArray<Vec<T>> {
    ParArray::from_parts(
        block_ranges(values.len(), p)
            .into_iter()
            .map(|r| values[r].to_vec())
            .collect(),
    )
}

#[test]
fn n_tenants_through_serve_equal_n_solo_runs() {
    for policy in policies() {
        cases(6, 0x5E7E, |rng| {
            let machine = unit_machine(8);
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
                ServePolicy::new(machine.clone())
                    .with_exec(policy)
                    .with_batch_window(rng.range_usize(1, 6)),
            );
            let n_tenants = rng.range_usize(2, 5);
            let tenants: Vec<(TenantId, u64)> = (0..n_tenants)
                .map(|i| {
                    let weight = rng.range_usize(1, 4) as u32;
                    let seed = rng.next_u64();
                    (srv.add_tenant_weighted(&format!("t{i}"), weight), seed)
                })
                .collect();

            // interleaved submissions: every tenant has requests in
            // flight concurrently, all against shared infrastructure
            let mut ledger: Vec<(Ticket, u64, ParArray<i64>)> = Vec::new();
            for _round in 0..3 {
                for (t, plan_seed) in &tenants {
                    let input = arb_item(rng, 8);
                    let ticket = srv
                        .submit_keyed(
                            *t,
                            &format!("plan-{plan_seed}"),
                            arb_plan(*plan_seed),
                            input.clone(),
                        )
                        .unwrap();
                    ledger.push((ticket, *plan_seed, input));
                }
            }
            assert_eq!(
                srv.stats().cache_misses,
                n_tenants as u64,
                "one compile per distinct plan"
            );
            srv.run_until_idle();

            // every request: output and report identical to a solo run
            let mut scl = Scl::new(machine.clone()).with_policy(policy);
            for (i, (ticket, plan_seed, input)) in ledger.into_iter().enumerate() {
                let (out, report) = srv.take(ticket).expect("request completed");
                scl.reset();
                let expect = arb_plan(plan_seed).run(&mut scl, input);
                assert_eq!(out, expect, "request {i} output ({policy:?})");
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "request {i} report ({policy:?})"
                );
            }
        });
    }
}

#[test]
fn optimized_submissions_equal_solo_run_optimized() {
    for policy in policies() {
        cases(6, 0x0071, |rng| {
            let machine = unit_machine(8);
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
                Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
            let seeds: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
            let tenants: Vec<TenantId> = (0..3).map(|i| srv.add_tenant(&format!("t{i}"))).collect();

            let mut ledger: Vec<(Ticket, u64, ParArray<i64>)> = Vec::new();
            for _round in 0..2 {
                for (t, seed) in tenants.iter().zip(&seeds) {
                    let input = arb_item(rng, 8);
                    let plan = arb_sym_plan(*seed);
                    let ticket = srv
                        .submit_optimized(*t, &format!("sym-{seed}"), &plan, reg(), input.clone())
                        .unwrap();
                    ledger.push((ticket, *seed, input));
                }
            }
            srv.run_until_idle();

            for (i, (ticket, seed, input)) in ledger.into_iter().enumerate() {
                let (out, report) = srv.take(ticket).expect("request completed");
                let mut scl = Scl::new(machine.clone()).with_policy(policy);
                let (expect, _log) = scl.run_optimized(&arb_sym_plan(seed), reg(), input);
                assert_eq!(out, expect, "request {i} output ({policy:?})");
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "request {i} report ({policy:?})"
                );
            }
        });
    }
}

#[test]
fn cache_hit_path_equals_cold_path() {
    for policy in policies() {
        let machine = unit_machine(8);
        let input = || ParArray::from_parts((0..8).map(|i| i * 11 - 40).collect::<Vec<i64>>());

        // warm service: second submission of the same plan is a cache hit
        let mut warm: Serve<ParArray<i64>, ParArray<i64>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let t = warm.add_tenant("t");
        let first = warm.submit(t, arb_plan(99), input()).unwrap();
        let second = warm.submit(t, arb_plan(99), input()).unwrap();
        assert_eq!(warm.stats().cache_misses, 1);
        assert_eq!(warm.stats().cache_hits, 1);
        warm.run_until_idle();
        let hit_first = warm.take(first).unwrap();
        let hit_second = warm.take(second).unwrap();

        // cold service: retention disabled, every submission recompiles
        let mut cold: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
            ServePolicy::new(machine.clone())
                .with_exec(policy)
                .with_plan_cache_cap(0),
        );
        let t = cold.add_tenant("t");
        let mut cold_results: Vec<(ParArray<i64>, MachineReport)> = Vec::new();
        for _ in 0..2 {
            let tk = cold.submit(t, arb_plan(99), input()).unwrap();
            cold.run_until_idle();
            cold_results.push(cold.take(tk).unwrap());
        }
        assert_eq!(cold.stats().cache_misses, 2, "cold path compiled twice");

        assert_eq!(hit_first, cold_results[0], "({policy:?})");
        assert_eq!(hit_second, cold_results[1], "({policy:?})");
        assert_eq!(hit_first, hit_second, "same plan, same input ({policy:?})");

        // the optimized mode honours the same contract
        let mut warm: Serve<ParArray<i64>, ParArray<i64>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let t = warm.add_tenant("t");
        let plan = arb_sym_plan(7);
        let a = warm.submit_optimized(t, "", &plan, reg(), input()).unwrap();
        let b = warm.submit_optimized(t, "", &plan, reg(), input()).unwrap();
        assert_eq!(warm.stats().cache_misses, 1);
        warm.run_until_idle();
        let (ra, rb) = (warm.take(a).unwrap(), warm.take(b).unwrap());
        assert_eq!(ra, rb);
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        let (expect, _) = scl.run_optimized(&plan, reg(), input());
        assert_eq!(ra.0, expect);
        assert_eq!(ra.1, scl.machine.report());
    }
}

/// DAG plans ride the same fingerprint-keyed compile cache as linear
/// ones: resubmitting a branching plan compiles once, and every request
/// matches a solo eager run — output and report.
#[test]
fn dag_plans_serve_with_one_compile_and_match_solo_runs() {
    for policy in policies() {
        cases(6, 0xDA65, |rng| {
            let machine = unit_machine(8);
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> =
                Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
            let t = srv.add_tenant("t");
            let plan_seed = rng.next_u64();

            let mut ledger: Vec<(Ticket, ParArray<i64>)> = Vec::new();
            for _ in 0..3 {
                let input = arb_item(rng, 8);
                let ticket = srv
                    .submit(t, arb_dag_plan(plan_seed), input.clone())
                    .unwrap();
                ledger.push((ticket, input));
            }
            assert_eq!(
                srv.stats().cache_misses,
                1,
                "one compile for a resubmitted DAG"
            );
            assert_eq!(srv.stats().cache_hits, 2, "rebuilt DAGs hit the cache");
            srv.run_until_idle();

            let mut scl = Scl::new(machine.clone()).with_policy(policy);
            for (i, (ticket, input)) in ledger.into_iter().enumerate() {
                let (out, report) = srv.take(ticket).expect("request completed");
                scl.reset();
                let expect = arb_dag_plan(plan_seed).run(&mut scl, input);
                assert_eq!(out, expect, "dag request {i} output ({policy:?})");
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "dag request {i} report ({policy:?})"
                );
            }
        });
    }
}

/// The cache key for a DAG is stable across rebuilds (fresh closures and
/// all) and separates plans that differ only inside a branch arm.
#[test]
fn dag_plan_fingerprints_are_stable_cache_keys() {
    let fp = |seed: u64| {
        arb_dag_plan(seed)
            .fingerprint()
            .expect("generated DAGs are fusable")
    };
    cases(16, 0xDA66, |rng| {
        let seed = rng.next_u64();
        assert_eq!(fp(seed), fp(seed), "rebuild must produce the cache key");
    });
    assert_ne!(fp(1), fp(2), "different DAGs must not share a cache key");
}

#[test]
fn psrs_tenants_match_solo_runs() {
    for policy in policies() {
        let p = 6;
        let machine = Machine::ap1000(p);
        let mut srv: Serve<ParArray<Vec<i64>>, ParArray<Vec<i64>>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let tenants: Vec<TenantId> = (0..3).map(|i| srv.add_tenant(&format!("t{i}"))).collect();

        let mut ledger: Vec<(Ticket, ParArray<Vec<i64>>)> = Vec::new();
        for round in 0..2u64 {
            for (i, t) in tenants.iter().enumerate() {
                let keys = uniform_keys(600 + 90 * i, 1000 * round + i as u64);
                let input = block_parts(&keys, p);
                let ticket = srv.submit(*t, psrs_plan(p), input.clone()).unwrap();
                ledger.push((ticket, input));
            }
        }
        assert_eq!(srv.stats().cache_misses, 1, "all tenants share one graph");
        srv.run_until_idle();

        let solo = psrs_plan(p);
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        for (i, (ticket, input)) in ledger.into_iter().enumerate() {
            let (out, report) = srv.take(ticket).unwrap();
            scl.reset();
            let expect = solo.run(&mut scl, input);
            assert_eq!(out, expect, "psrs request {i} ({policy:?})");
            assert_eq!(report, scl.machine.report(), "psrs request {i} report");
            // sanity: globally sorted
            let flat: Vec<i64> = out.parts().iter().flat_map(|v| v.iter().copied()).collect();
            assert!(flat.windows(2).all(|w| w[0] <= w[1]), "psrs output sorted");
        }
    }
}

#[test]
fn histogram_tenants_match_solo_and_sequential() {
    for policy in policies() {
        let (buckets, p) = (16, 4);
        let machine = Machine::ap1000(p);
        let mut srv: Serve<ParArray<Vec<u64>>, ParArray<Vec<u64>>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let a = srv.add_tenant("a");
        let b = srv.add_tenant_weighted("b", 2);

        let mut ledger: Vec<(Ticket, Vec<u64>)> = Vec::new();
        for (i, t) in [a, b, a, b].into_iter().enumerate() {
            let values: Vec<u64> = uniform_keys(2000, i as u64)
                .into_iter()
                .map(|x| x as u64)
                .collect();
            let ticket = srv
                .submit(t, histogram_plan(buckets, p), block_parts(&values, p))
                .unwrap();
            ledger.push((ticket, values));
        }
        srv.run_until_idle();

        let solo = histogram_plan(buckets, p);
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        for (i, (ticket, values)) in ledger.into_iter().enumerate() {
            let (out, report) = srv.take(ticket).unwrap();
            scl.reset();
            let expect = solo.run(&mut scl, block_parts(&values, p));
            assert_eq!(out, expect, "histogram request {i}");
            assert_eq!(report, scl.machine.report(), "histogram request {i}");
            // sanity: concatenated owner counts equal the sequential histogram
            let flat: Vec<u64> = out.parts().iter().flat_map(|v| v.iter().copied()).collect();
            assert_eq!(flat, histogram_seq(&values, buckets));
        }
    }
}

#[test]
fn batch_histogram_streams_host_data_through_the_service() {
    for policy in policies() {
        let (buckets, p) = (10, 4);
        let machine = Machine::ap1000(p);
        let mut srv: Serve<Vec<u64>, Vec<u64>> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let t = srv.add_tenant("t");

        let batches: Vec<Vec<u64>> = (0..5)
            .map(|i| {
                uniform_keys(700, 77 + i)
                    .into_iter()
                    .map(|x| x as u64)
                    .collect()
            })
            .collect();
        let tickets: Vec<Ticket> = batches
            .iter()
            .map(|batch| {
                srv.submit(t, batch_histogram_plan(buckets, p), batch.clone())
                    .unwrap()
            })
            .collect();
        srv.run_until_idle();

        let solo = batch_histogram_plan(buckets, p);
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        for (i, (ticket, batch)) in tickets.into_iter().zip(batches).enumerate() {
            let (out, report) = srv.take(ticket).unwrap();
            scl.reset();
            let expect = solo.run(&mut scl, batch.clone());
            assert_eq!(out, expect, "batch {i}");
            assert_eq!(report, scl.machine.report(), "batch {i} report");
            assert_eq!(out, histogram_seq(&batch, buckets), "batch {i} counts");
        }
    }
}

#[test]
fn jacobi_states_round_trip_the_service() {
    for policy in policies() {
        let p = 4;
        let n = 64;
        let machine = Machine::ap1000(p);
        let mut srv: Serve<JacobiState, JacobiState> =
            Serve::new(ServePolicy::new(machine.clone()).with_exec(policy));
        let t = srv.add_tenant("t");

        let starts: Vec<usize> = block_ranges(n, p).into_iter().map(|r| r.start).collect();
        let field = |seed: u64| -> Vec<f64> {
            uniform_keys(n, seed)
                .into_iter()
                .map(|x| (x % 1000) as f64 / 10.0)
                .collect()
        };
        let state =
            |seed: u64| -> JacobiState { (block_parts(&field(seed), p), 0usize, f64::INFINITY) };

        let tickets: Vec<(Ticket, u64)> = (0..3u64)
            .map(|seed| {
                let tk = srv
                    .submit(t, jacobi_plan(n, starts.clone(), 1e-3, 40), state(seed))
                    .unwrap();
                (tk, seed)
            })
            .collect();
        assert_eq!(srv.stats().cache_misses, 1, "one compile for all sweeps");
        srv.run_until_idle();

        let solo = jacobi_plan(n, starts.clone(), 1e-3, 40);
        let mut scl = Scl::new(machine.clone()).with_policy(policy);
        for (tk, seed) in tickets {
            let ((arr, iters, res), report) = srv.take(tk).unwrap();
            scl.reset();
            scl.clear_buffers(); // host-side pool must not leak across baselines
            let (earr, eiters, eres) = solo.run(&mut scl, state(seed));
            assert_eq!(arr, earr, "jacobi field (seed {seed})");
            assert_eq!(iters, eiters, "jacobi iterations (seed {seed})");
            assert_eq!(res.to_bits(), eres.to_bits(), "jacobi residual");
            assert_eq!(report, scl.machine.report(), "jacobi report (seed {seed})");
            assert!(iters > 0, "the loop ran");
        }
    }
}

#[test]
fn app_plans_fingerprint_stably_and_apart() {
    // equal constructions fingerprint equal, for every app plan
    let fp = |p: Option<scl_core::PlanFingerprint>| p.expect("app plans are fusable");
    let starts: Vec<usize> = block_ranges(64, 4).into_iter().map(|r| r.start).collect();
    let psrs = fp(psrs_plan(4).fingerprint());
    let hist = fp(histogram_plan(16, 4).fingerprint());
    let batch = fp(batch_histogram_plan(16, 4).fingerprint());
    let jac = fp(jacobi_plan(64, starts.clone(), 1e-6, 50).fingerprint());
    assert_eq!(psrs, fp(psrs_plan(4).fingerprint()));
    assert_eq!(hist, fp(histogram_plan(16, 4).fingerprint()));
    assert_eq!(batch, fp(batch_histogram_plan(16, 4).fingerprint()));
    assert_eq!(
        jac,
        fp(jacobi_plan(64, starts.clone(), 1e-6, 50).fingerprint())
    );

    // the four app plans are structurally distinct — pairwise different
    let all = [
        ("psrs", psrs),
        ("hist", hist),
        ("batch", batch),
        ("jac", jac),
    ];
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            assert_ne!(all[i].1, all[j].1, "{} vs {}", all[i].0, all[j].0);
        }
    }

    // parameters living only in closures are invisible to the structural
    // hash: psrs_plan(4) and psrs_plan(6) are structural twins — exactly
    // the case `Serve::submit_keyed` exists for
    assert_eq!(psrs, fp(psrs_plan(6).fingerprint()));
    assert_ne!(
        psrs.with_salt("p=4"),
        psrs.with_salt("p=6"),
        "keyed submissions split them"
    );
}

#[test]
fn batch_window_never_changes_answers() {
    for policy in policies() {
        let machine = unit_machine(8);
        let mut results: Vec<Vec<(ParArray<i64>, MachineReport)>> = Vec::new();
        for window in [1usize, 3, 16] {
            let mut srv: Serve<ParArray<i64>, ParArray<i64>> = Serve::new(
                ServePolicy::new(machine.clone())
                    .with_exec(policy)
                    .with_batch_window(window),
            );
            let t = srv.add_tenant("t");
            let tickets: Vec<Ticket> = (0..10)
                .map(|k| {
                    srv.submit(
                        t,
                        arb_plan(1234),
                        ParArray::from_parts((k..k + 8).collect::<Vec<i64>>()),
                    )
                    .unwrap()
                })
                .collect();
            srv.run_until_idle();
            results.push(
                tickets
                    .into_iter()
                    .map(|tk| srv.take(tk).unwrap())
                    .collect(),
            );
        }
        assert_eq!(results[0], results[1], "window 1 vs 3 ({policy:?})");
        assert_eq!(results[0], results[2], "window 1 vs 16 ({policy:?})");
    }
}
