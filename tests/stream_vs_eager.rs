//! Differential suite for the streaming runtime: serving a plan over a
//! stream of inputs through `StreamExec` must equal running the same plan
//! eagerly once per input — outputs bit-for-bit, in order, with
//! **identical per-item machine metrics and makespan** — under
//! sequential, threaded, and cost-driven policies. Plus the backpressure
//! contract: a long stream through a small-capacity graph keeps peak
//! in-flight items bounded by O(capacity × stages), asserted via the
//! runtime's in-flight gauge.
//!
//! The CI harness pins the policy set through `SCL_EXEC_POLICY`
//! (`seq` / `auto` / `cost`); unset, every policy runs in-process.

use scl::prelude::*;
use scl_apps::psrs::psrs_plan;
use scl_apps::stream_histogram::batch_histogram_plan;
use scl_apps::workloads::uniform_keys;
use scl_core::ParArray;
use scl_testkit::dag::{arb_dag, DagStats};
use scl_testkit::{cases, Rng};
use std::sync::OnceLock;

fn reg() -> &'static Registry {
    // `Registry` is `Sync` but not `Send` (boxed index functions), so the
    // shared static holds a leaked reference rather than the value
    static REG: OnceLock<&'static Registry> = OnceLock::new();
    REG.get_or_init(|| Box::leak(Box::new(Registry::standard())))
}

/// The policy matrix, overridable by the CI harness. An unparseable
/// `SCL_EXEC_POLICY` fails the suite instead of silently testing the
/// wrong thing.
fn policies() -> Vec<ExecPolicy> {
    match ExecPolicy::from_env().expect("SCL_EXEC_POLICY") {
        Some(pinned) => vec![pinned],
        None => vec![
            ExecPolicy::Sequential,
            ExecPolicy::Threads(4),
            ExecPolicy::cost_driven(),
        ],
    }
}

/// One random fusable, `'static` stage: opaque compute stages mixed with
/// communication barriers — the fragment the streaming graph serves with
/// farms and stage boundaries.
fn arb_stage(rng: &mut Rng) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    match rng.below(9) {
        0 => {
            let k = rng.range_i64(-100, 100);
            Skel::map(move |x: &i64| x.wrapping_mul(3).wrapping_add(k))
        }
        1 => Skel::imap(|i, x: &i64| x.wrapping_add(i as i64)),
        2 => {
            let k = rng.range_i64(1, 5) as u64;
            Skel::map_costed(move |x: &i64| (x.wrapping_sub(7), Work::flops(k)))
        }
        3 => Skel::imap_costed(|i, x: &i64| (x ^ i as i64, Work::cmps(1))),
        4 => Skel::rotate(rng.range_i64(-6, 7) as isize),
        5 => {
            let fill = rng.range_i64(-10, 10);
            Skel::shift(rng.range_i64(-3, 4) as isize, fill)
        }
        6 => Skel::fold_all(|a: &i64, b: &i64| a.wrapping_add(*b), Work::flops(1)),
        7 => Skel::scan(|a: &i64, b: &i64| (*a).max(*b)),
        _ => {
            // always in range: source index never exceeds the target's
            let k = rng.range_i64(0, 17) as usize;
            Skel::fetch(move |i| i.saturating_sub(k))
        }
    }
}

fn arb_plan(rng: &mut Rng) -> Skel<'static, ParArray<i64>, ParArray<i64>> {
    let len = rng.range_usize(1, 9);
    let mut plan = arb_stage(rng);
    for _ in 1..len {
        plan = plan.then(arb_stage(rng));
    }
    plan
}

fn arb_item(rng: &mut Rng, parts: usize) -> ParArray<i64> {
    ParArray::from_parts(rng.vec_of(parts, |r| r.range_i64(-1_000_000, 1_000_000)))
}

#[test]
fn randomized_streams_agree_with_eager_per_item() {
    for policy in policies() {
        cases(40, 0x57, |rng| {
            let parts = rng.range_usize(2, 12);
            let items: Vec<ParArray<i64>> = (0..rng.range_usize(5, 30))
                .map(|_| arb_item(rng, parts))
                .collect();

            // streamed: one persistent graph serves every item
            let mut exec = StreamExec::new(
                arb_plan(&mut rng.clone()),
                StreamPolicy::new(Machine::ap1000(parts)).with_exec(policy),
            );
            for item in &items {
                exec.push(item.clone()).unwrap();
            }
            let streamed = exec.drain_with_reports();
            assert_eq!(streamed.len(), items.len());

            // eager: one fresh run per item on a reset context
            let plan = arb_plan(&mut rng.clone());
            let mut scl = Scl::ap1000(parts);
            for (i, (got, report)) in streamed.into_iter().enumerate() {
                scl.reset();
                let expect = plan.run(&mut scl, items[i].clone());
                assert_eq!(got.to_vec(), expect.to_vec(), "item {i} ({policy:?})");
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "item {i} metrics/makespan ({policy:?})"
                );
            }
        });
    }
}

/// DAG plans stream too: a persistent graph whose hops include branch
/// nodes (pipelined `pair` farms, inline `choice` / `fanout`) serves
/// every item with output and per-item report identical to a fresh eager
/// run — same contract the linear fragment holds above.
#[test]
fn dag_streams_agree_with_eager_per_item() {
    for policy in policies() {
        cases(12, 0xDA57, |rng| {
            let parts = 8 * rng.range_usize(1, 3);
            let items: Vec<ParArray<i64>> = (0..rng.range_usize(4, 12))
                .map(|_| arb_item(rng, parts))
                .collect();
            // rebuilt from a cloned rng so the streamed graph and the
            // eager baseline are the identical plan
            let build = |rng: &mut Rng| {
                let mut stats = DagStats::default();
                arb_dag(rng, reg(), parts, 3, &mut stats)
            };

            let mut exec = StreamExec::new(
                build(&mut rng.clone()),
                StreamPolicy::new(Machine::ap1000(parts)).with_exec(policy),
            );
            for item in &items {
                exec.push(item.clone()).unwrap();
            }
            let streamed = exec.drain_with_reports();
            assert_eq!(streamed.len(), items.len());

            let plan = build(&mut rng.clone());
            let mut scl = Scl::ap1000(parts);
            for (i, (got, report)) in streamed.into_iter().enumerate() {
                scl.reset();
                let expect = plan.run(&mut scl, items[i].clone());
                assert_eq!(got.to_vec(), expect.to_vec(), "item {i} ({policy:?})");
                assert_eq!(
                    report,
                    scl.machine.report(),
                    "item {i} metrics/makespan ({policy:?})"
                );
            }
        });
    }
}

#[test]
fn run_stream_collects_in_input_order() {
    for policy in policies() {
        let plan = Skel::map(|x: &i64| x * 2)
            .then(Skel::rotate(1))
            .then(Skel::imap_costed(|i, x: &i64| {
                (x + i as i64, Work::flops(1))
            }));
        let items: Vec<ParArray<i64>> = (0..200)
            .map(|k| ParArray::from_parts(vec![k, k + 1, k + 2, k + 3]))
            .collect();

        let exec = StreamExec::new(
            plan,
            StreamPolicy::new(Machine::ap1000(4)).with_exec(policy),
        );
        let streamed: Vec<Vec<i64>> = exec
            .run_stream(items.iter().cloned())
            .map(|a| a.to_vec())
            .collect();

        let plan = Skel::map(|x: &i64| x * 2)
            .then(Skel::rotate(1))
            .then(Skel::imap_costed(|i, x: &i64| {
                (x + i as i64, Work::flops(1))
            }));
        let mut scl = Scl::ap1000(4);
        let eager: Vec<Vec<i64>> = items
            .iter()
            .map(|item| {
                scl.reset();
                plan.run(&mut scl, item.clone()).to_vec()
            })
            .collect();
        assert_eq!(streamed, eager, "{policy:?}");
    }
}

#[test]
fn histogram_batches_stream_like_eager() {
    for policy in policies() {
        let batches: Vec<Vec<u64>> = (0..16)
            .map(|i| {
                uniform_keys(800, 40 + i)
                    .into_iter()
                    .map(|x| x as u64)
                    .collect()
            })
            .collect();

        let mut exec = StreamExec::new(
            batch_histogram_plan(16, 4),
            StreamPolicy::new(Machine::ap1000(4)).with_exec(policy),
        );
        for b in &batches {
            exec.push(b.clone()).unwrap();
        }
        let streamed = exec.drain_with_reports();

        let plan = batch_histogram_plan(16, 4);
        let mut scl = Scl::ap1000(4);
        for (i, (got, report)) in streamed.into_iter().enumerate() {
            scl.reset();
            let expect = plan.run(&mut scl, batches[i].clone());
            assert_eq!(got, expect, "batch {i} ({policy:?})");
            assert_eq!(report, scl.machine.report(), "batch {i} ({policy:?})");
        }
    }
}

#[test]
fn psrs_batches_stream_like_eager() {
    let p = 4;
    for policy in policies() {
        let inputs: Vec<ParArray<Vec<i64>>> = (0..8)
            .map(|i| {
                let mut scl = Scl::ap1000(p);
                scl.partition(Pattern::Block(p), &uniform_keys(1200, 90 + i))
            })
            .collect();

        let mut exec = StreamExec::new(
            psrs_plan(p),
            StreamPolicy::new(Machine::ap1000(p)).with_exec(policy),
        );
        for item in &inputs {
            exec.push(item.clone()).unwrap();
        }
        let streamed = exec.drain();

        let plan = psrs_plan(p);
        let mut scl = Scl::ap1000(p);
        for (i, got) in streamed.into_iter().enumerate() {
            scl.reset();
            let expect = plan.run(&mut scl, inputs[i].clone());
            assert_eq!(got, expect, "sort batch {i} ({policy:?})");
            // and it really is globally sorted
            let flat: Vec<i64> = got.parts().iter().flatten().copied().collect();
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            assert_eq!(flat, sorted);
        }
    }
}

#[test]
fn backpressure_keeps_ten_thousand_items_bounded() {
    // 10k items through a capacity-8 graph: peak in-flight items must be
    // bounded by the graph's structural capacity — channels, replicas,
    // reorder buffers, park slots — and never scale with the stream.
    let capacity = 8usize;
    let width = 4usize;
    let plan = Skel::map(|x: &i64| x.wrapping_mul(31))
        .then(Skel::rotate(1))
        .then(Skel::map(|x: &i64| x.wrapping_add(7)))
        .then(Skel::rotate(-1))
        .then(Skel::map_costed(|x: &i64| (x ^ 0x55, Work::flops(1))));
    let exec = StreamExec::new(
        plan,
        StreamPolicy::new(Machine::ap1000(4))
            .with_exec(ExecPolicy::Threads(width))
            .with_capacity(capacity),
    );
    let stages = exec.farm_stages().max(1);
    let mut iter =
        exec.run_stream((0..10_000).map(|k| ParArray::from_parts(vec![k, k + 1, k + 2, k + 3])));
    let mut count = 0u64;
    while iter.next().is_some() {
        count += 1;
    }
    let exec = iter.into_executor();
    assert_eq!(count, 10_000);
    assert_eq!(exec.in_flight(), 0);
    // per farm stage: in-queue (cap) + out-queue (cap) + busy replicas
    // (width) + reorder buffer (≤ cap + width) + park slot, plus the
    // entry slot — O(capacity × stages), independent of the 10k length
    let per_stage = (3 * capacity + 2 * width + 1) as u64;
    let bound = per_stage * stages as u64 + 2;
    let peak = exec.peak_in_flight();
    assert!(
        peak <= bound,
        "peak in-flight {peak} exceeded O(capacity × stages) bound {bound}"
    );
    // and the pipeline genuinely overlapped items
    if exec.farm_stages() > 0 {
        assert!(peak > 1, "graph never held more than one item");
    }
    let t = exec.throughput();
    assert_eq!(t.items, 10_000);
    assert!(t.items_per_sec() > 0.0);
}

#[test]
fn stream_exec_rejects_oversized_items_up_front() {
    let mut exec = StreamExec::new(
        Skel::map(|x: &i64| *x),
        StreamPolicy::new(Machine::ap1000(2)),
    );
    let err = exec
        .push(ParArray::from_parts(vec![1i64, 2, 3, 4]))
        .unwrap_err();
    assert_eq!(
        err,
        scl_core::SclError::MachineTooSmall {
            needed: 4,
            procs: 2
        }
    );
}
