//! Host-threading sweep: every application must produce identical results
//! and identical *virtual* time whether its partition-local closures run
//! sequentially or on the from-scratch thread pool. (Virtual time models
//! the simulated machine; host threading is a pure implementation detail.)

use scl::apps::workloads::{diag_dominant_system, random_matrix, uniform_keys};
use scl::prelude::*;

fn two_ctxs(p: usize) -> (Scl, Scl) {
    (
        Scl::ap1000(p),
        Scl::ap1000(p).with_policy(ExecPolicy::Threads(4)),
    )
}

#[test]
fn hyperquicksort_threaded_equivalence() {
    let data = uniform_keys(8_000, 1);
    let (mut a, mut b) = (
        Scl::hypercube(8, CostModel::ap1000()),
        Scl::hypercube(8, CostModel::ap1000()).with_policy(ExecPolicy::Threads(4)),
    );
    let ra = scl::apps::hyperquicksort::hyperquicksort_flat(&mut a, &data, 3);
    let rb = scl::apps::hyperquicksort::hyperquicksort_flat(&mut b, &data, 3);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.machine.metrics, b.machine.metrics);
}

#[test]
fn gauss_threaded_equivalence() {
    let (m, rhs) = diag_dominant_system(24, 2);
    let (mut a, mut b) = two_ctxs(6);
    let ra = scl::apps::gauss::gauss_jordan_scl(&mut a, &m, &rhs, 6);
    let rb = scl::apps::gauss::gauss_jordan_scl(&mut b, &m, &rhs, 6);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn cannon_threaded_equivalence() {
    let x = random_matrix(12, 12, 3);
    let y = random_matrix(12, 12, 4);
    let (mut a, mut b) = two_ctxs(4);
    let ra = scl::apps::cannon::cannon_matmul(&mut a, &x, &y, 2);
    let rb = scl::apps::cannon::cannon_matmul(&mut b, &x, &y, 2);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn jacobi_threaded_equivalence() {
    let mut u0 = vec![0.0f64; 64];
    u0[63] = 100.0;
    let (mut a, mut b) = two_ctxs(4);
    let ra = scl::apps::jacobi::jacobi_scl(&mut a, &u0, 4, 1e-4, 200);
    let rb = scl::apps::jacobi::jacobi_scl(&mut b, &u0, 4, 1e-4, 200);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn psrs_threaded_equivalence() {
    let data = uniform_keys(6_000, 5);
    let (mut a, mut b) = two_ctxs(6);
    let ra = scl::apps::psrs::psrs_sort(&mut a, &data, 6);
    let rb = scl::apps::psrs::psrs_sort(&mut b, &data, 6);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn fft_threaded_equivalence() {
    let x: Vec<(f64, f64)> = (0..512)
        .map(|i| ((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos()))
        .collect();
    let (mut a, mut b) = (
        Scl::hypercube(8, CostModel::ap1000()),
        Scl::hypercube(8, CostModel::ap1000()).with_policy(ExecPolicy::Threads(4)),
    );
    let ra = scl::apps::fft::fft_scl(&mut a, &x, 8);
    let rb = scl::apps::fft::fft_scl(&mut b, &x, 8);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn nbody_threaded_equivalence() {
    let bodies = scl::apps::nbody::random_bodies(128, 7);
    let (mut a, mut b) = two_ctxs(8);
    let ra = scl::apps::nbody::forces_scl(&mut a, &bodies, 8);
    let rb = scl::apps::nbody::forces_scl(&mut b, &bodies, 8);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn kmeans_threaded_equivalence() {
    let pts = scl::apps::kmeans::random_points(500, 9);
    let init: Vec<[f64; 2]> = vec![[0.2, 0.2], [0.8, 0.8], [0.5, 0.1]];
    let (mut a, mut b) = two_ctxs(4);
    let ra = scl::apps::kmeans::kmeans_scl(&mut a, &pts, &init, 4, 50);
    let rb = scl::apps::kmeans::kmeans_scl(&mut b, &pts, &init, 4, 50);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}

#[test]
fn histogram_threaded_equivalence() {
    let values: Vec<u64> = uniform_keys(4_000, 11)
        .into_iter()
        .map(|x| x as u64)
        .collect();
    let (mut a, mut b) = two_ctxs(8);
    let ra = scl::apps::histogram::histogram_scl(&mut a, &values, 64, 8);
    let rb = scl::apps::histogram::histogram_scl(&mut b, &values, 64, 8);
    assert_eq!(ra, rb);
    assert_eq!(a.makespan(), b.makespan());
}
